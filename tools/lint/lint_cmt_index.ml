(* Whole-repo typed index, built from the compiler's .cmt/.cmti
   artifacts (compiler-libs only — the same dependency footprint as the
   syntactic tier).

   The index is the data layer of the deep tier: one pass over every
   typedtree records

   - defs: structure-level value bindings, qualified by compilation
     unit and submodule path ("Planck_netsim__Engine.Timer.cancel");
   - edges: for each def, every global value it references (callee or
     captured callback — both count for reachability);
   - events: occurrences the deep rules care about, with their
     instantiated types — polymorphic compare/equality/hash uses,
     allocation smells, closure literals handed to the engine, and
     determinism sources (wall clock, ambient randomness, unsorted
     hashtable iteration);
   - exports: every value declared in an .mli, for the dead-export
     rule, plus which units reference each value;
   - manifests: transparent type abbreviations (type t = int), so the
     type classifier can see through them without an Env.

   Paths in a typedtree arrive in several spellings for the same value
   (dune's wrapped-library aliases: [Planck_netsim.Switch.ingress] from
   outside the library, [Planck_netsim__.Switch.ingress] from inside,
   a plain stamped ident from the defining unit itself, and local
   [module T = ...] aliases). [resolve] normalises all of them to the
   defining unit's qualified name so the graph has one node per value. *)

module SS = Set.Make (String)

(* ---- Types ---- *)

type ty_shape =
  | Imm  (** int / char / bool / unit — safe under polymorphic compare *)
  | TFloat
  | TString
  | TPoly  (** still a type variable at the use site *)
  | TOther of string  (** anything structured; payload is the rendered type *)

type source_kind = Wall_clock | Ambient_random | Hashtbl_iter

type mutability = Mut_none | Mut_atomic | Mut_yes

let mut_join a b =
  match (a, b) with
  | Mut_yes, _ | _, Mut_yes -> Mut_yes
  | Mut_atomic, _ | _, Mut_atomic -> Mut_atomic
  | Mut_none, Mut_none -> Mut_none

type ref_op = Rread | Rwrite | Rrmw

type event_kind =
  | Poly_fun of { op : string; shape : ty_shape; rendered : string }
      (** a polymorphic primitive used as a value or applied:
          compare, Hashtbl.hash, ... *)
  | Poly_eq of {
      op : string;
      shape : ty_shape;
      rendered : string;
      constantish : bool;
    }  (** structural =/<> with the instantiated operand type *)
  | Alloc of string  (** Printf/Format/(^)/string_of_* reference *)
  | Schedule_closure of string
      (** closure literal passed to Engine.schedule/schedule_at/every *)
  | Source of source_kind * string  (** determinism-taint source *)
  | Ref_op of { op : ref_op; target : string }
      (** read / write / read-modify-write of a module-level ref or
          mutable field, by qualified binding id *)
  | Blocking of string
      (** reference to a call that can block the running domain
          (Mutex.lock, Condition.wait, Domain.join, Unix I/O, stdout
          formatters) — the ownership tier's stall set *)

type event = {
  e_def : string;  (** enclosing def id *)
  e_file : string;
  e_line : int;
  e_col : int;
  e_kind : event_kind;
  e_in_raise : bool;  (** inside the argument of raise/failwith/... *)
}

type def = { d_id : string; d_unit : string; d_file : string; d_line : int }

type export = { x_id : string; x_unit : string; x_file : string; x_line : int }

(* A structure-level value binding, with the typed facts the domain
   tier classifies on: its type (kept as a Types.type_expr so
   classification can run lazily, after every unit's type declarations
   are loaded) and the worst mutable allocation its module-init
   expression performs (a [ref]/[Hashtbl.create]/... outside any
   lambda — the closure-captured-counter pattern). *)
type raw_binding = {
  rb_id : string;
  rb_unit : string;
  rb_file : string;
  rb_line : int;
  rb_type : Types.type_expr;
  rb_alloc : mutability;
}

(* What the mutability analysis needs of a type declaration: whether it
   declares a mutable field directly (records and inline ctor records),
   the component types to recurse into, and the manifest if any. *)
type decl_shape = {
  ds_mutable : bool;
  ds_subtys : Types.type_expr list;
  ds_manifest : Types.type_expr option;
}

(* ---- Ownership-tier records ---- *)

type spsc_role = Producer | Consumer

(* every call site of a transfer point, violation or not — the
   committed ownership inventory is built from these *)
type transfer_site = {
  s_def : string;
  s_file : string;
  s_line : int;
  s_point : string;  (** the matched pattern, e.g. ["Spsc.push"] *)
}

type spsc_site = {
  sp_def : string;
  sp_file : string;
  sp_line : int;
  sp_role : spsc_role;
  sp_op : string;  (** push / pop / peek / drain *)
  sp_chan : string;
      (** best-effort channel identity: the resolved def id when the
          receiver is a structure-level binding, ["local:<def>"] for a
          let-bound local, ["field:<type>.<label>"] for a record field *)
}

(* a use-after-transfer fact from [Lint_transfer.scan], with the raw
   operand type kept for lazy mutability classification *)
type raw_transfer_use = {
  tu_def : string;
  tu_unit : string;
  tu_file : string;
  tu_use : Lint_transfer.use;
}

type release_leak = {
  k_def : string;
  k_file : string;
  k_line : int;
  k_col : int;
  k_alloc_line : int;
  k_raise : string;
}

type t = {
  unit_files : (string, string) Hashtbl.t;  (* impl unit -> source file *)
  known_units : (string, unit) Hashtbl.t;  (* impl + intf unit names *)
  defs : (string, def) Hashtbl.t;
  edges : (string, SS.t ref) Hashtbl.t;  (* def id -> referenced ids *)
  ref_units : (string, SS.t ref) Hashtbl.t;  (* target id -> referencing units *)
  mutable events : event list;
  mutable exports : export list;
  manifests : (string, Types.type_expr) Hashtbl.t;  (* "Unit.tyname" *)
  decls : (string, decl_shape) Hashtbl.t;
      (* keyed "Unit.Path.tyname" (cross-unit) AND "Unit#stamped_ident"
         (same-unit local references); impl entries replace intf ones *)
  mod_aliases : (string, Path.t) Hashtbl.t;
      (* structure-level [module P = Planck_x.P] aliases, keyed
         "Unit.P" — the lazy classifier resolves type paths through
         them after the per-unit walking context is gone *)
  mutable raw_bindings : raw_binding list;
  functor_used : (string, unit) Hashtbl.t;
      (* units passed to functors / included / packed: every export of
         such a unit counts as referenced (the functor sees them all) *)
  mutable transfer_sites_ : transfer_site list;
  mutable spsc_sites_ : spsc_site list;
  mutable raw_transfer_uses : raw_transfer_use list;
  mutable release_leaks_ : release_leak list;
}

let create () =
  {
    unit_files = Hashtbl.create 128;
    known_units = Hashtbl.create 256;
    defs = Hashtbl.create 1024;
    edges = Hashtbl.create 1024;
    ref_units = Hashtbl.create 1024;
    events = [];
    exports = [];
    manifests = Hashtbl.create 256;
    decls = Hashtbl.create 256;
    mod_aliases = Hashtbl.create 64;
    raw_bindings = [];
    functor_used = Hashtbl.create 16;
    transfer_sites_ = [];
    spsc_sites_ = [];
    raw_transfer_uses = [];
    release_leaks_ = [];
  }

let units t = Hashtbl.fold (fun u _ acc -> u :: acc) t.unit_files []
let unit_count t = Hashtbl.length t.unit_files
let def_count t = Hashtbl.length t.defs
let file_of_unit t u = Hashtbl.find_opt t.unit_files u
let has_file t f = Hashtbl.fold (fun _ v acc -> acc || v = f) t.unit_files false
let events t = t.events
let exports t = t.exports
let find_def t id = Hashtbl.find_opt t.defs id
let iter_defs t f = Hashtbl.iter (fun _ d -> f d) t.defs

let edges_of t id =
  match Hashtbl.find_opt t.edges id with Some s -> !s | None -> SS.empty

let iter_edges t f = Hashtbl.iter (fun caller s -> f caller !s) t.edges

let referencing_units t id =
  match Hashtbl.find_opt t.ref_units id with
  | Some s -> SS.elements !s
  | None -> []

let functor_used_unit t u = Hashtbl.mem t.functor_used u

let note_unit_ref t ~from_unit ~target =
  match Hashtbl.find_opt t.ref_units target with
  | Some s -> s := SS.add from_unit !s
  | None -> Hashtbl.replace t.ref_units target (ref (SS.singleton from_unit))

(* ---- Dotted-suffix matching ----

   Patterns like "Engine.schedule" must match
   "Planck_netsim__Engine.schedule" (the wrapped unit name ends in
   "__Engine") as well as "Fixture.Engine.schedule" (a submodule), but
   not "Stdlib.reschedule". The leftmost pattern component may match a
   component suffix only at a "__" boundary. *)

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let split_dots s = String.split_on_char '.' s

let suffix_matches ~pattern target =
  let p = split_dots pattern and c = split_dots target in
  let np = List.length p and nc = List.length c in
  if nc < np then false
  else
    let tail = List.filteri (fun i _ -> i >= nc - np) c in
    match (p, tail) with
    | p0 :: prest, c0 :: crest ->
        (c0 = p0 || ends_with ~suffix:("__" ^ p0) c0) && prest = crest
    | _ -> false

let any_suffix_matches patterns target =
  List.exists (fun pattern -> suffix_matches ~pattern target) patterns

(* ---- Interesting externals ---- *)

let poly_fun_ops =
  [
    ("Stdlib.compare", "compare");
    ("Stdlib.Hashtbl.hash", "Hashtbl.hash");
    ("Stdlib.Hashtbl.seeded_hash", "Hashtbl.seeded_hash");
    ("Stdlib.Hashtbl.hash_param", "Hashtbl.hash_param");
  ]

let eq_ops = [ ("Stdlib.=", "="); ("Stdlib.<>", "<>") ]

let alloc_smells =
  [ "Stdlib.^"; "Stdlib.String.concat"; "Stdlib.Bytes.concat";
    "Stdlib.string_of_int"; "Stdlib.string_of_float"; "Stdlib.string_of_bool" ]

let alloc_smell_prefixes = [ "Stdlib.Printf."; "Stdlib.Format." ]

let wall_clock_sources =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
    "Unix.mktime"; "Stdlib.Sys.time" ]

let wall_clock_prefixes = [ "Mtime." ]

let raise_like =
  [ "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg"; "Stdlib.exit" ]

let schedule_ops = [ "Engine.schedule"; "Engine.schedule_at"; "Engine.every" ]

(* ---- Blocking operations (the ownership tier's stall set) ----

   A domain parked in any of these stalls the sense-reversing barrier
   for every shard. Mutex.unlock and sprintf-family calls are absent on
   purpose: they do not park the caller. *)

let blocking_exact =
  [ "Stdlib.Mutex.lock"; "Stdlib.Mutex.protect"; "Stdlib.Condition.wait";
    "Stdlib.Domain.join"; "Stdlib.Thread.join"; "Stdlib.Thread.delay";
    "Stdlib.print_string"; "Stdlib.print_endline"; "Stdlib.print_newline";
    "Stdlib.print_char"; "Stdlib.print_int"; "Stdlib.print_float";
    "Stdlib.print_bytes"; "Stdlib.prerr_string"; "Stdlib.prerr_endline";
    "Stdlib.prerr_newline"; "Stdlib.read_line"; "Stdlib.read_int";
    "Stdlib.input_line"; "Stdlib.input"; "Stdlib.really_input";
    "Stdlib.output_string"; "Stdlib.output_bytes"; "Stdlib.output_char";
    "Stdlib.output"; "Stdlib.flush"; "Stdlib.flush_all";
    "Stdlib.Printf.printf"; "Stdlib.Printf.eprintf";
    "Stdlib.Format.printf"; "Stdlib.Format.eprintf";
    "Stdlib.Format.print_string"; "Stdlib.Format.print_newline";
    "Stdlib.Format.print_flush"; "Stdlib.Format.std_formatter";
    "Stdlib.Format.err_formatter" ]

(* Unix.* is I/O except the wall-clock / environment readers — those
   are the determinism tier's problem, not a stall *)
let unix_nonblocking =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
    "Unix.mktime"; "Unix.getenv"; "Unix.environment"; "Unix.getpid" ]

let blocking_op name =
  List.mem name blocking_exact
  || String.length name > 5
     && String.sub name 0 5 = "Unix."
     && not (List.mem name unix_nonblocking)

(* ---- Ownership transfer / SPSC role call sites ---- *)

let ownership_site_points = [ "Spsc.push"; "Timer.cancel"; "Buffer_pool.release" ]

let spsc_ops =
  [ ("Spsc.push", (Producer, "push")); ("Spsc.pop", (Consumer, "pop"));
    ("Spsc.peek", (Consumer, "peek")); ("Spsc.drain", (Consumer, "drain")) ]

let hashtbl_iter_patterns =
  [ "Hashtbl.iter"; "Hashtbl.fold"; "Table.iter"; "Table.fold" ]

let ambient_random target =
  match String.index_opt target '.' with
  | Some i when String.sub target 0 i = "Random" -> (
      let rest = String.sub target (i + 1) (String.length target - i - 1) in
      match rest with
      | "self_init" | "State.make_self_init" -> true
      | _ -> not (String.length rest >= 6 && String.sub rest 0 6 = "State."))
  | _ -> false

(* ---- Path flattening & normalisation ---- *)

let rec flatten_path p acc =
  match p with
  | Path.Pident id -> (id, acc)
  | Path.Pdot (p, s) -> flatten_path p (s :: acc)
  | Path.Papply (f, _) -> flatten_path f acc
  | Path.Pextra_ty (p, _) -> flatten_path p acc

type target =
  | TDef of string  (** a value of an indexed unit, by qualified id *)
  | TExtern of string  (** outside the repo: "Stdlib.Printf.sprintf" *)
  | TNone  (** a local (function parameter, let-bound) value *)

let normalize_unit t head comps =
  let mk u rest =
    match rest with
    | [] -> TExtern u (* bare module reference *)
    | _ -> TDef (u ^ "." ^ String.concat "." rest)
  in
  match comps with
  | m1 :: rest ->
      let cand = if ends_with ~suffix:"__" head then head ^ m1 else head ^ "__" ^ m1 in
      if Hashtbl.mem t.known_units cand then mk cand rest
      else if Hashtbl.mem t.known_units head then mk head comps
      else TExtern (String.concat "." (head :: comps))
  | [] ->
      if Hashtbl.mem t.known_units head then TExtern head
      else TExtern head

(* ---- Per-unit walking context ---- *)

module ITbl = Hashtbl.Make (struct
  type t = Ident.t

  let equal = Ident.same
  let hash = Hashtbl.hash
end)

type mod_binding = MLocal of string (* def-id prefix inside the unit *)
                 | MAlias of Path.t

type ictx = {
  ix : t;
  unit_name : string;
  file : string;
  mutable cur_def : string;
  mutable raise_depth : int;
  vals : string ITbl.t;  (* structure-level value ident -> def id *)
  mods : mod_binding ITbl.t;
}

let rec resolve_flat ctx (head, comps) =
  if Ident.persistent head || Ident.global head then
    normalize_unit ctx.ix (Ident.name head) comps
  else
    match (ITbl.find_opt ctx.vals head, comps) with
    | Some def_id, [] -> TDef def_id
    | _ -> (
        match ITbl.find_opt ctx.mods head with
        | Some (MAlias p) ->
            let head', comps' = flatten_path p [] in
            resolve_flat ctx (head', comps' @ comps)
        | Some (MLocal prefix) -> (
            match comps with
            | [] -> TNone
            | _ ->
                TDef
                  (ctx.unit_name ^ "." ^ prefix ^ String.concat "." comps))
        | None -> TNone)

let resolve ctx p = resolve_flat ctx (flatten_path p [])

let target_name = function TDef s | TExtern s -> Some s | TNone -> None

(* ---- Type classification ---- *)

let render_type ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "<type>"

let manifest_key ctx p =
  let head, comps = flatten_path p [] in
  if Ident.persistent head || Ident.global head then
    match normalize_unit ctx.ix (Ident.name head) comps with
    | TDef id -> Some id
    | TExtern _ | TNone -> None
  else
    match comps with
    | [] -> Some (ctx.unit_name ^ "." ^ Ident.name head)
    | _ -> (
        match ITbl.find_opt ctx.mods head with
        | Some (MLocal prefix) ->
            Some (ctx.unit_name ^ "." ^ prefix ^ String.concat "." comps)
        | _ -> None)

let rec classify ctx depth ty =
  if depth > 8 then TOther (render_type ty)
  else
    match Types.get_desc ty with
    | Types.Tvar _ | Types.Tunivar _ -> TPoly
    | Types.Tpoly (ty, _) -> classify ctx (depth + 1) ty
    | Types.Tconstr (p, args, _) ->
        if
          Path.same p Predef.path_int || Path.same p Predef.path_char
          || Path.same p Predef.path_bool
          || Path.same p Predef.path_unit
        then Imm
        else if Path.same p Predef.path_float then TFloat
        else if Path.same p Predef.path_string || Path.same p Predef.path_bytes
        then TString
        else if args <> [] then TOther (render_type ty)
        else (
          match manifest_key ctx p with
          | Some key -> (
              match Hashtbl.find_opt ctx.ix.manifests key with
              | Some body -> classify ctx (depth + 1) body
              | None -> TOther (render_type ty))
          | None -> TOther (render_type ty))
    | _ -> TOther (render_type ty)

let rec arrow_arg n ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, b, _) -> if n = 0 then Some a else arrow_arg (n - 1) b
  | Types.Tpoly (ty, _) -> arrow_arg n ty
  | _ -> None

let classify_op ctx ~op ty =
  (* which arrow argument carries the compared type *)
  let slot = if op = "Hashtbl.seeded_hash" || op = "Hashtbl.hash_param" then 2 else 0 in
  match arrow_arg slot ty with
  | Some arg -> (classify ctx 0 arg, render_type arg)
  | None -> (TPoly, render_type ty)

(* ---- Transitive type mutability (the domain tier's classifier) ----

   Three-valued: [Mut_yes] when the type transitively contains a
   mutable record field / ref / array / bytes / Hashtbl-family
   container, [Mut_atomic] when the only mutability is behind
   [Stdlib.Atomic.t] (or a lock), [Mut_none] otherwise. In-repo types
   are resolved through the [decls] table, which carries implementation
   shapes even for types an .mli exports abstract. *)

let builtin_mut_yes =
  [ "Stdlib.ref"; "Stdlib.Hashtbl.t"; "Stdlib.Queue.t"; "Stdlib.Stack.t";
    "Stdlib.Buffer.t"; "Stdlib.Random.State.t"; "Stdlib.Weak.t";
    "Stdlib.Dynarray.t"; "Stdlib.in_channel"; "Stdlib.out_channel";
    "Stdlib.Format.formatter" ]

let builtin_mut_atomic =
  [ "Stdlib.Mutex.t"; "Stdlib.Condition.t"; "Stdlib.Semaphore.Counting.t";
    "Stdlib.Semaphore.Binary.t";
    (* a DLS key denotes per-domain storage: each domain sees its own
       slot, so even a mutable payload is confined by construction *)
    "Stdlib.Domain.DLS.key" ]

let atomic_t_names = [ "Stdlib.Atomic.t"; "CamlinternalAtomic.t" ]

(* The canonical decl key tells us which unit owns the declaration's
   component types, so same-unit local type references inside them
   resolve against the right stamp namespace. *)
let decl_owner key =
  match String.index_opt key '#' with
  | Some i -> String.sub key 0 i
  | None -> (
      match String.index_opt key '.' with
      | Some i -> String.sub key 0 i
      | None -> key)

let rec find_decl_flat t ~unit_name fuel (head, comps) =
  if fuel <= 0 then None
  else if Ident.persistent head || Ident.global head then
    match normalize_unit t (Ident.name head) comps with
    | TDef id -> Option.map (fun s -> (id, s)) (Hashtbl.find_opt t.decls id)
    | TExtern _ | TNone -> None
  else
    let stamp_key = unit_name ^ "#" ^ Ident.unique_name head in
    match (comps, Hashtbl.find_opt t.decls stamp_key) with
    | [], Some s -> Some (stamp_key, s)
    | _ -> (
        let qkey =
          unit_name ^ "." ^ String.concat "." (Ident.name head :: comps)
        in
        match Hashtbl.find_opt t.decls qkey with
        | Some s -> Some (qkey, s)
        | None -> (
            (* a local [module P = ...] alias head: chase the alias *)
            match
              Hashtbl.find_opt t.mod_aliases
                (unit_name ^ "." ^ Ident.name head)
            with
            | Some p when comps <> [] ->
                let head', comps' = flatten_path p [] in
                find_decl_flat t ~unit_name (fuel - 1) (head', comps' @ comps)
            | _ -> None))

let find_decl t ~unit_name p = find_decl_flat t ~unit_name 8 (flatten_path p [])

let rec type_mut t ~unit_name visited depth ty =
  if depth > 20 then Mut_none
  else
    let recurse owner ty' = type_mut t ~unit_name:owner visited (depth + 1) ty' in
    match Types.get_desc ty with
    | Types.Ttuple tys ->
        List.fold_left
          (fun acc ty' -> mut_join acc (recurse unit_name ty'))
          Mut_none tys
    | Types.Tpoly (ty', _) -> recurse unit_name ty'
    | Types.Tconstr (p, args, _) ->
        if
          Path.same p Predef.path_int || Path.same p Predef.path_char
          || Path.same p Predef.path_bool
          || Path.same p Predef.path_unit
          || Path.same p Predef.path_float
          || Path.same p Predef.path_string
          || Path.same p Predef.path_int32
          || Path.same p Predef.path_int64
          || Path.same p Predef.path_nativeint
          || Path.same p Predef.path_exn
        then Mut_none
        else if
          Path.same p Predef.path_array
          || Path.same p Predef.path_bytes
          || Path.same p Predef.path_floatarray
          || Path.same p Predef.path_lazy_t
        then Mut_yes
        else
          let join_args () =
            List.fold_left
              (fun acc a -> mut_join acc (recurse unit_name a))
              Mut_none args
          in
          let head, comps = flatten_path p [] in
          let extern = String.concat "." (Ident.name head :: comps) in
          if List.mem extern builtin_mut_yes then Mut_yes
          else if List.mem extern atomic_t_names then (
            (* an Atomic cell of an immutable payload is atomic; an
               Atomic holding mutable structure is still shared *)
            match join_args () with Mut_none -> Mut_atomic | m -> m)
          else if List.mem extern builtin_mut_atomic then Mut_atomic
          else if suffix_matches ~pattern:"Table.t" extern then
            (* Hashtbl.Make instances (module Table = Hashtbl.Make _):
               the functor-generated decl lives in no typedtree *)
            Mut_yes
          else (
            match find_decl t ~unit_name p with
            | None -> join_args ()
            | Some (key, shape) ->
                if SS.mem key !visited then Mut_none
                else begin
                  visited := SS.add key !visited;
                  let owner = decl_owner key in
                  let base = if shape.ds_mutable then Mut_yes else Mut_none in
                  let acc =
                    List.fold_left
                      (fun acc sty -> mut_join acc (recurse owner sty))
                      base shape.ds_subtys
                  in
                  let acc =
                    match shape.ds_manifest with
                    | Some m -> mut_join acc (recurse owner m)
                    | None -> acc
                  in
                  mut_join acc (join_args ())
                end)
    | _ -> Mut_none

let type_mutability t ~unit_name ty = type_mut t ~unit_name (ref SS.empty) 0 ty

let shape_of_decl (td : Typedtree.type_declaration) =
  let tt = td.Typedtree.typ_type in
  let of_labels lbls =
    List.fold_left
      (fun (m, tys) (l : Types.label_declaration) ->
        (m || l.Types.ld_mutable = Asttypes.Mutable, l.Types.ld_type :: tys))
      (false, []) lbls
  in
  let direct_mut, subtys =
    match tt.Types.type_kind with
    | Types.Type_record (lbls, _) -> of_labels lbls
    | Types.Type_variant (ctors, _) ->
        List.fold_left
          (fun (m, tys) (c : Types.constructor_declaration) ->
            match c.Types.cd_args with
            | Types.Cstr_tuple args -> (m, args @ tys)
            | Types.Cstr_record lbls ->
                let m', tys' = of_labels lbls in
                (m || m', tys' @ tys))
          (false, []) ctors
    | _ -> (false, [])
  in
  {
    ds_mutable = direct_mut;
    ds_subtys = subtys;
    ds_manifest = tt.Types.type_manifest;
  }

let register_decl ix ~unit_name ~prefix (td : Typedtree.type_declaration) =
  let shape = shape_of_decl td in
  Hashtbl.replace ix.decls
    (unit_name ^ "." ^ prefix ^ Ident.name td.Typedtree.typ_id)
    shape;
  Hashtbl.replace ix.decls
    (unit_name ^ "#" ^ Ident.unique_name td.Typedtree.typ_id)
    shape

(* ---- Event recording ---- *)

let record_event ctx loc kind =
  let pos = loc.Location.loc_start in
  ctx.ix.events <-
    {
      e_def = ctx.cur_def;
      e_file = ctx.file;
      e_line = pos.Lexing.pos_lnum;
      e_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      e_kind = kind;
      e_in_raise = ctx.raise_depth > 0;
    }
    :: ctx.ix.events

let record_edge ctx tgt =
  match target_name tgt with
  | None -> ()
  | Some name ->
      (* References inside raise/failwith/invalid_arg arguments count
         for dead-export (the value IS used) but not as call-graph
         edges: an error path terminates per-packet processing, so it
         neither makes its targets hot nor propagates taint. *)
      if ctx.raise_depth = 0 then
        (match Hashtbl.find_opt ctx.ix.edges ctx.cur_def with
        | Some s -> s := SS.add name !s
        | None ->
            Hashtbl.replace ctx.ix.edges ctx.cur_def (ref (SS.singleton name)));
      (match tgt with
      | TDef id -> note_unit_ref ctx.ix ~from_unit:ctx.unit_name ~target:id
      | TExtern _ | TNone -> ())

let note_ident ctx p loc ty =
  let tgt = resolve ctx p in
  record_edge ctx tgt;
  match target_name tgt with
  | None -> ()
  | Some name ->
      (match List.assoc_opt name poly_fun_ops with
      | Some op ->
          let shape, rendered = classify_op ctx ~op ty in
          record_event ctx loc (Poly_fun { op; shape; rendered })
      | None -> ());
      (match List.assoc_opt name eq_ops with
      | Some op ->
          (* an =/<> passed as a function value, not applied: no operand
             expressions to exempt, so treat like bare compare *)
          let shape, rendered = classify_op ctx ~op ty in
          record_event ctx loc (Poly_fun { op; shape; rendered })
      | None -> ());
      if
        List.mem name alloc_smells
        || List.exists
             (fun pre ->
               String.length name >= String.length pre
               && String.sub name 0 (String.length pre) = pre)
             alloc_smell_prefixes
      then record_event ctx loc (Alloc name);
      if
        List.mem name wall_clock_sources
        || List.exists
             (fun pre ->
               String.length name >= String.length pre
               && String.sub name 0 (String.length pre) = pre)
             wall_clock_prefixes
      then record_event ctx loc (Source (Wall_clock, name));
      if ambient_random name then
        record_event ctx loc (Source (Ambient_random, name));
      if any_suffix_matches hashtbl_iter_patterns name then
        record_event ctx loc (Source (Hashtbl_iter, name));
      if blocking_op name then record_event ctx loc (Blocking name)

let ref_op_of = function
  | "Stdlib.!" -> Some Rread
  | "Stdlib.:=" -> Some Rwrite
  | "Stdlib.incr" | "Stdlib.decr" -> Some Rrmw
  | _ -> None

(* Record a ref-op event when the operand is a module-level binding of
   an indexed unit (locals resolve to TNone and are skipped — they are
   confined by construction). *)
let record_ref_op ctx loc op (operand : Typedtree.expression) =
  match operand.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
      match resolve ctx p with
      | TDef id -> record_event ctx loc (Ref_op { op; target = id })
      | TExtern _ | TNone -> ())
  | _ -> ()

(* best-effort SPSC channel identity for a receiver expression *)
let chan_of_expr ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
      match resolve ctx p with
      | TDef id -> id
      | TExtern s -> s
      | TNone -> "local:" ^ ctx.cur_def)
  | Typedtree.Texp_field (_, _, ld) ->
      let tyname =
        match Types.get_desc ld.Types.lbl_res with
        | Types.Tconstr (p, _, _) ->
            let head, comps = flatten_path p [] in
            String.concat "." (Ident.name head :: comps)
        | _ -> "?"
      in
      "field:" ^ tyname ^ "." ^ ld.Types.lbl_name
  | _ -> "expr:" ^ ctx.cur_def

(* record transfer-point and SPSC-role call sites (inventory facts, not
   findings — every site is recorded, violation or not) *)
let record_ownership_sites ctx name args loc =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  (match
     List.find_opt
       (fun p -> suffix_matches ~pattern:p name)
       ownership_site_points
   with
  | Some point ->
      ctx.ix.transfer_sites_ <-
        { s_def = ctx.cur_def; s_file = ctx.file; s_line = line; s_point = point }
        :: ctx.ix.transfer_sites_
  | None -> ());
  match
    List.find_opt (fun (p, _) -> suffix_matches ~pattern:p name) spsc_ops
  with
  | Some (_, (role, op)) ->
      let chan =
        match
          List.find_map
            (fun (lbl, a) ->
              match (lbl, a) with
              | Asttypes.Nolabel, Some a -> Some a
              | _ -> None)
            args
        with
        | Some receiver -> chan_of_expr ctx receiver
        | None -> "expr:" ^ ctx.cur_def
      in
      ctx.ix.spsc_sites_ <-
        {
          sp_def = ctx.cur_def;
          sp_file = ctx.file;
          sp_line = line;
          sp_role = role;
          sp_op = op;
          sp_chan = chan;
        }
        :: ctx.ix.spsc_sites_
  | None -> ()

let constantish (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_constant _ | Typedtree.Texp_construct _
  | Typedtree.Texp_variant _ ->
      true
  | Typedtree.Texp_ident (Path.Pdot _, _, _) -> true
  | _ -> false

(* ---- The typedtree iterator ---- *)

let is_function_literal (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> true
  | _ -> false

let mark_functor_arg ctx (me : Typedtree.module_expr) =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_ident (p, _) -> (
      let head, comps = flatten_path p [] in
      if Ident.persistent head || Ident.global head then
        let u =
          match comps with
          | m1 :: _ ->
              let h = Ident.name head in
              let cand = if ends_with ~suffix:"__" h then h ^ m1 else h ^ "__" ^ m1 in
              if Hashtbl.mem ctx.ix.known_units cand then cand else h
          | [] -> Ident.name head
        in
        Hashtbl.replace ctx.ix.functor_used u ()
      else
        match ITbl.find_opt ctx.mods head with
        | Some (MAlias p') -> (
            let head', _ = flatten_path p' [] in
            if Ident.persistent head' || Ident.global head' then
              Hashtbl.replace ctx.ix.functor_used (Ident.name head') ())
        | _ -> ())
  | _ -> ()

let iterator ctx =
  let default = Tast_iterator.default_iterator in
  let resolve_apply_edge ctx (fn : Typedtree.expression) =
    match fn.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> record_edge ctx (resolve ctx p)
    | _ -> ()
  in
  let expr sub (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) ->
        note_ident ctx p e.Typedtree.exp_loc e.Typedtree.exp_type
    | Typedtree.Texp_apply (fn, args) -> (
        let fn_target =
          match fn.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> target_name (resolve ctx p)
          | _ -> None
        in
        let walk_args () =
          List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args
        in
        match fn_target with
        | Some name when List.mem_assoc name eq_ops -> (
            (* record the =/<> application once, with operand context,
               and skip the bare-ident event for the operator itself *)
            let op = List.assoc name eq_ops in
            let shape, rendered =
              classify_op ctx ~op fn.Typedtree.exp_type
            in
            let cst =
              match args with
              | [ (_, Some a); (_, Some b) ] -> constantish a || constantish b
              | _ -> false
            in
            record_event ctx fn.Typedtree.exp_loc
              (Poly_eq { op; shape; rendered; constantish = cst });
            resolve_apply_edge ctx fn;
            walk_args ())
        | Some name when List.mem name raise_like ->
            sub.Tast_iterator.expr sub fn;
            ctx.raise_depth <- ctx.raise_depth + 1;
            walk_args ();
            ctx.raise_depth <- ctx.raise_depth - 1
        | Some name when any_suffix_matches schedule_ops name ->
            if
              List.exists
                (fun (_, a) ->
                  match a with Some a -> is_function_literal a | None -> false)
                args
            then record_event ctx e.Typedtree.exp_loc (Schedule_closure name);
            default.Tast_iterator.expr sub e
        | Some name when ref_op_of name <> None ->
            (match (ref_op_of name, args) with
            | Some op, (_, Some operand) :: _ ->
                record_ref_op ctx e.Typedtree.exp_loc op operand
            | _ -> ());
            default.Tast_iterator.expr sub e
        | Some name ->
            record_ownership_sites ctx name args e.Typedtree.exp_loc;
            default.Tast_iterator.expr sub e
        | None -> default.Tast_iterator.expr sub e)
    | Typedtree.Texp_field (obj, _, _) ->
        record_ref_op ctx e.Typedtree.exp_loc Rread obj;
        default.Tast_iterator.expr sub e
    | Typedtree.Texp_setfield (obj, _, _, _) ->
        record_ref_op ctx e.Typedtree.exp_loc Rwrite obj;
        default.Tast_iterator.expr sub e
    | Typedtree.Texp_pack me ->
        mark_functor_arg ctx me;
        default.Tast_iterator.expr sub e
    | _ -> default.Tast_iterator.expr sub e
  in
  let module_expr sub (me : Typedtree.module_expr) =
    (match me.Typedtree.mod_desc with
    | Typedtree.Tmod_apply (_, arg, _) -> mark_functor_arg ctx arg
    | _ -> ());
    default.Tast_iterator.module_expr sub me
  in
  { default with Tast_iterator.expr; module_expr }

(* ---- Structure-level walk (defines the def boundaries) ---- *)

let register_def ctx ~prefix ~name ~loc =
  let d_id = ctx.unit_name ^ "." ^ prefix ^ name in
  let pos = loc.Location.loc_start in
  Hashtbl.replace ctx.ix.defs d_id
    { d_id; d_unit = ctx.unit_name; d_file = ctx.file; d_line = pos.Lexing.pos_lnum };
  d_id

let with_def ctx d_id f =
  let saved = ctx.cur_def in
  ctx.cur_def <- d_id;
  f ();
  ctx.cur_def <- saved

(* ---- Module-init allocation scan ----

   Does the right-hand side of a structure-level binding allocate a
   mutable cell when the module initialises? The scan does NOT descend
   into lambdas (those allocate per call, not per module) — so it
   catches exactly the closure-captured pattern
   [let next_id = let c = ref 0 in fun () -> ...] where the binding's
   own type (an arrow) says nothing about the hidden state. *)

let alloc_makers_mut =
  [ "Stdlib.ref"; "Stdlib.Hashtbl.create"; "Stdlib.Queue.create";
    "Stdlib.Stack.create"; "Stdlib.Buffer.create"; "Stdlib.Bytes.create";
    "Stdlib.Bytes.make"; "Stdlib.Array.make"; "Stdlib.Array.init";
    "Stdlib.Array.create_float"; "Stdlib.Array.copy"; "Stdlib.Array.append";
    "Stdlib.Array.of_list"; "Stdlib.Random.State.make"; "Stdlib.Lazy.from_fun" ]

let alloc_makers_atomic = [ "Stdlib.Atomic.make" ]

let init_alloc_scan ctx (e0 : Typedtree.expression) =
  let acc = ref Mut_none in
  let default = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_function _ -> ()
    | Typedtree.Texp_apply (fn, _) ->
        (match fn.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            match target_name (resolve ctx p) with
            | Some name when List.mem name alloc_makers_mut ->
                acc := mut_join !acc Mut_yes
            | Some name when List.mem name alloc_makers_atomic ->
                acc := mut_join !acc Mut_atomic
            | _ -> ())
        | _ -> ());
        default.Tast_iterator.expr sub e
    | Typedtree.Texp_record { fields; _ } ->
        Array.iter
          (fun ((ld : Types.label_description), _) ->
            if ld.Types.lbl_mut = Asttypes.Mutable then
              acc := mut_join !acc Mut_yes)
          fields;
        default.Tast_iterator.expr sub e
    | Typedtree.Texp_array _ ->
        acc := mut_join !acc Mut_yes;
        default.Tast_iterator.expr sub e
    | _ -> default.Tast_iterator.expr sub e
  in
  let it = { default with Tast_iterator.expr } in
  it.Tast_iterator.expr it e0;
  !acc

let register_manifest ctx ~prefix (td : Typedtree.type_declaration) =
  match (td.Typedtree.typ_manifest, td.Typedtree.typ_params) with
  | Some core, [] ->
      Hashtbl.replace ctx.ix.manifests
        (ctx.unit_name ^ "." ^ prefix ^ Ident.name td.Typedtree.typ_id)
        core.Typedtree.ctyp_type
  | _ -> ()

let rec walk_items ctx prefix items it =
  List.iter (fun item -> walk_item ctx prefix item it) items

and walk_item ctx prefix (item : Typedtree.structure_item) it =
  match item.Typedtree.str_desc with
  | Typedtree.Tstr_value (_, vbs) ->
      (* register names first so recursive and later references resolve *)
      let named =
        List.map
          (fun (vb : Typedtree.value_binding) ->
            let ids = Typedtree.pat_bound_idents vb.Typedtree.vb_pat in
            let d_id =
              match ids with
              | id :: _ ->
                  register_def ctx ~prefix ~name:(Ident.name id)
                    ~loc:vb.Typedtree.vb_loc
              | [] -> ctx.unit_name ^ "." ^ prefix ^ "(let)"
            in
            List.iter
              (fun id ->
                let did =
                  register_def ctx ~prefix ~name:(Ident.name id)
                    ~loc:vb.Typedtree.vb_loc
                in
                ITbl.replace ctx.vals id did)
              ids;
            (vb, d_id))
          vbs
      in
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let alloc = init_alloc_scan ctx vb.Typedtree.vb_expr in
          List.iter
            (fun (id, (sloc : string Location.loc), ty) ->
              ctx.ix.raw_bindings <-
                {
                  rb_id = ctx.unit_name ^ "." ^ prefix ^ Ident.name id;
                  rb_unit = ctx.unit_name;
                  rb_file = ctx.file;
                  rb_line = sloc.Location.loc.Location.loc_start.Lexing.pos_lnum;
                  rb_type = ty;
                  rb_alloc = alloc;
                }
                :: ctx.ix.raw_bindings)
            (Typedtree.pat_bound_idents_full vb.Typedtree.vb_pat))
        vbs;
      List.iter
        (fun ((vb : Typedtree.value_binding), d_id) ->
          with_def ctx d_id (fun () ->
              it.Tast_iterator.expr it vb.Typedtree.vb_expr);
          (* the ownership tier's intraprocedural pass, one scan per
             structure-level binding *)
          let uses, leaks =
            Lint_transfer.scan
              ~resolve:(fun p -> target_name (resolve ctx p))
              vb.Typedtree.vb_expr
          in
          List.iter
            (fun (u : Lint_transfer.use) ->
              ctx.ix.raw_transfer_uses <-
                { tu_def = d_id; tu_unit = ctx.unit_name; tu_file = ctx.file;
                  tu_use = u }
                :: ctx.ix.raw_transfer_uses)
            uses;
          List.iter
            (fun (k : Lint_transfer.leak) ->
              ctx.ix.release_leaks_ <-
                {
                  k_def = d_id;
                  k_file = ctx.file;
                  k_line = k.Lint_transfer.k_line;
                  k_col = k.Lint_transfer.k_col;
                  k_alloc_line = k.Lint_transfer.k_alloc_line;
                  k_raise = k.Lint_transfer.k_raise;
                }
                :: ctx.ix.release_leaks_)
            leaks)
        named
  | Typedtree.Tstr_eval (e, _) ->
      with_def ctx
        (ctx.unit_name ^ "." ^ prefix ^ "(init)")
        (fun () -> it.Tast_iterator.expr it e)
  | Typedtree.Tstr_type (_, tds) ->
      List.iter (register_manifest ctx ~prefix) tds;
      List.iter (register_decl ctx.ix ~unit_name:ctx.unit_name ~prefix) tds
  | Typedtree.Tstr_module mb -> walk_module_binding ctx prefix mb it
  | Typedtree.Tstr_recmodule mbs ->
      List.iter (fun mb -> walk_module_binding ctx prefix mb it) mbs
  | Typedtree.Tstr_include { Typedtree.incl_mod; _ } ->
      mark_functor_arg ctx incl_mod;
      with_def ctx
        (ctx.unit_name ^ "." ^ prefix ^ "(include)")
        (fun () -> it.Tast_iterator.module_expr it incl_mod)
  | _ -> ()

and walk_module_binding ctx prefix (mb : Typedtree.module_binding) it =
  let name =
    match mb.Typedtree.mb_id with Some id -> Some (Ident.name id) | None -> None
  in
  walk_module_expr ctx prefix ~binder:mb.Typedtree.mb_id ~name
    mb.Typedtree.mb_expr it

and walk_module_expr ctx prefix ~binder ~name (me : Typedtree.module_expr) it =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_structure s ->
      let sub_prefix =
        match name with Some n -> prefix ^ n ^ "." | None -> prefix
      in
      (match binder with
      | Some id -> ITbl.replace ctx.mods id (MLocal sub_prefix)
      | None -> ());
      walk_items ctx sub_prefix s.Typedtree.str_items it
  | Typedtree.Tmod_ident (p, _) ->
      (match binder with
      | Some id -> ITbl.replace ctx.mods id (MAlias p)
      | None -> ());
      (match name with
      | Some n ->
          Hashtbl.replace ctx.ix.mod_aliases (ctx.unit_name ^ "." ^ n) p
      | None -> ())
  | Typedtree.Tmod_constraint (me', _, _, _) ->
      walk_module_expr ctx prefix ~binder ~name me' it
  | _ ->
      (* functor bodies / applications: walk generically for refs and
         functor-argument marking, attributed to a module pseudo-def *)
      with_def ctx
        (ctx.unit_name ^ "." ^ prefix
        ^ (match name with Some n -> n | None -> "")
        ^ "(module)")
        (fun () -> it.Tast_iterator.module_expr it me)

let index_implementation t ~unit_name ~file (str : Typedtree.structure) =
  let ctx =
    {
      ix = t;
      unit_name;
      file;
      cur_def = unit_name ^ ".(init)";
      raise_depth = 0;
      vals = ITbl.create 64;
      mods = ITbl.create 16;
    }
  in
  let it = iterator ctx in
  walk_items ctx "" str.Typedtree.str_items it

(* ---- Interfaces: exports + manifests ---- *)

let rec walk_sig_items t ~unit_name ~file ~prefix items =
  List.iter
    (fun (item : Typedtree.signature_item) ->
      match item.Typedtree.sig_desc with
      | Typedtree.Tsig_value vd ->
          let pos = vd.Typedtree.val_loc.Location.loc_start in
          t.exports <-
            {
              x_id = unit_name ^ "." ^ prefix ^ Ident.name vd.Typedtree.val_id;
              x_unit = unit_name;
              x_file = file;
              x_line = pos.Lexing.pos_lnum;
            }
            :: t.exports
      | Typedtree.Tsig_type (_, tds) ->
          List.iter
            (fun (td : Typedtree.type_declaration) ->
              register_decl t ~unit_name ~prefix td;
              match (td.Typedtree.typ_manifest, td.Typedtree.typ_params) with
              | Some core, [] ->
                  Hashtbl.replace t.manifests
                    (unit_name ^ "." ^ prefix ^ Ident.name td.Typedtree.typ_id)
                    core.Typedtree.ctyp_type
              | _ -> ())
            tds
      | Typedtree.Tsig_module md -> (
          match (md.Typedtree.md_id, md.Typedtree.md_type.Typedtree.mty_desc) with
          | Some id, Typedtree.Tmty_signature sg ->
              walk_sig_items t ~unit_name ~file
                ~prefix:(prefix ^ Ident.name id ^ ".")
                sg.Typedtree.sig_items
          | _ -> ())
      | _ -> ())
    items

let index_interface t ~unit_name ~file (sg : Typedtree.signature) =
  walk_sig_items t ~unit_name ~file ~prefix:"" sg.Typedtree.sig_items

(* ---- Loading from .cmt/.cmti trees ---- *)

let repo_file sourcefile =
  match sourcefile with
  | None -> None
  | Some f ->
      let f =
        if String.length f > 2 && String.sub f 0 2 = "./" then
          String.sub f 2 (String.length f - 2)
        else f
      in
      let ok =
        List.exists
          (fun d ->
            String.length f > String.length d
            && String.sub f 0 (String.length d) = d)
          [ "lib/"; "bin/"; "bench/"; "examples/"; "tools/"; "test/" ]
      in
      if ok then Some f else None

let rec collect_cmt_files acc path =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if entry = ".git" then acc
             else collect_cmt_files acc (Filename.concat path entry))
           acc
  | false ->
      if Filename.check_suffix path ".cmt" || Filename.check_suffix path ".cmti"
      then path :: acc
      else acc

type loaded = {
  l_unit : string;
  l_file : string;
  l_annots : Cmt_format.binary_annots;
}

let load ~dirs =
  let t = create () in
  let files = List.fold_left collect_cmt_files [] dirs in
  let seen = Hashtbl.create 128 in
  let loaded =
    List.filter_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception _ -> None
        | cmt -> (
            match repo_file cmt.Cmt_format.cmt_sourcefile with
            | None -> None
            | Some f ->
                let kind =
                  match cmt.Cmt_format.cmt_annots with
                  | Cmt_format.Implementation _ -> "impl"
                  | Cmt_format.Interface _ -> "intf"
                  | _ -> "other"
                in
                let key = (kind, cmt.Cmt_format.cmt_modname) in
                if kind = "other" || Hashtbl.mem seen key then None
                else begin
                  Hashtbl.replace seen key ();
                  Some
                    {
                      l_unit = cmt.Cmt_format.cmt_modname;
                      l_file = f;
                      l_annots = cmt.Cmt_format.cmt_annots;
                    }
                end))
      files
  in
  (* phase 1: all unit names must be known before any path normalises *)
  List.iter
    (fun l ->
      Hashtbl.replace t.known_units l.l_unit ();
      match l.l_annots with
      | Cmt_format.Implementation _ ->
          Hashtbl.replace t.unit_files l.l_unit l.l_file
      | _ -> ())
    loaded;
  (* phase 2: interfaces first, so type manifests from .mli files are
     available when implementations classify compare operands *)
  List.iter
    (fun l ->
      match l.l_annots with
      | Cmt_format.Interface sg ->
          index_interface t ~unit_name:l.l_unit ~file:l.l_file sg
      | _ -> ())
    loaded;
  List.iter
    (fun l ->
      match l.l_annots with
      | Cmt_format.Implementation str ->
          index_implementation t ~unit_name:l.l_unit ~file:l.l_file str
      | _ -> ())
    loaded;
  t

(* ---- Classified bindings (the domain tier's inventory input) ----

   Classification runs lazily, here, rather than during the walk: a
   binding's type may reference declarations of units loaded later, so
   the raw [Types.type_expr] is kept and resolved only once every
   unit's decls are in the table. *)

type binding = {
  b_id : string;
  b_unit : string;
  b_file : string;
  b_line : int;
  b_arrow : bool;
  b_type_mut : mutability;
      (** of the binding's type; for arrows, of the final result type *)
  b_alloc : mutability;  (** worst module-init allocation *)
  b_rendered : string;
}

(* collapse the pretty-printer's line breaks so rendered types stay on
   one line in messages and the committed inventory format *)
let squeeze_ws s =
  let buf = Buffer.create (String.length s) in
  let prev_space = ref false in
  String.iter
    (fun c ->
      let c = match c with '\n' | '\t' | '\r' -> ' ' | c -> c in
      if c = ' ' then begin
        if not !prev_space then Buffer.add_char buf ' ';
        prev_space := true
      end
      else begin
        prev_space := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (ty', _) -> is_arrow ty'
  | _ -> false

let rec final_result ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, r, _) -> final_result r
  | Types.Tpoly (ty', _) -> final_result ty'
  | _ -> ty

let bindings t =
  let seen = Hashtbl.create 256 in
  let out =
    (* raw_bindings is most-recent-first, so the first occurrence of a
       shadowed toplevel name is the binding that survives *)
    List.filter_map
      (fun rb ->
        if Hashtbl.mem seen rb.rb_id then None
        else begin
          Hashtbl.add seen rb.rb_id ();
          let arrow = is_arrow rb.rb_type in
          let mty = if arrow then final_result rb.rb_type else rb.rb_type in
          Some
            {
              b_id = rb.rb_id;
              b_unit = rb.rb_unit;
              b_file = rb.rb_file;
              b_line = rb.rb_line;
              b_arrow = arrow;
              b_type_mut = type_mutability t ~unit_name:rb.rb_unit mty;
              b_alloc = rb.rb_alloc;
              b_rendered = squeeze_ws (render_type rb.rb_type);
            }
        end)
      t.raw_bindings
  in
  List.sort (fun a b -> String.compare a.b_id b.b_id) out

(* ---- Ownership-tier accessors ----

   Like [bindings], transfer-use classification runs lazily: the
   transferred operand's [Types.type_expr] may reference declarations
   of units loaded after the one that recorded it. *)

type transfer_use = {
  u_def : string;
  u_file : string;
  u_line : int;
  u_col : int;
  u_var : string;
  u_point : string;
  u_kind : Lint_transfer.use_kind;
  u_transfer_line : int;
  u_mut : mutability;  (** of the transferred value's type *)
}

let transfer_uses t =
  List.rev_map
    (fun r ->
      let u = r.tu_use in
      {
        u_def = r.tu_def;
        u_file = r.tu_file;
        u_line = u.Lint_transfer.u_line;
        u_col = u.Lint_transfer.u_col;
        u_var = u.Lint_transfer.u_var;
        u_point = u.Lint_transfer.u_point;
        u_kind = u.Lint_transfer.u_kind;
        u_transfer_line = u.Lint_transfer.u_transfer_line;
        u_mut = type_mutability t ~unit_name:r.tu_unit u.Lint_transfer.u_ty;
      })
    t.raw_transfer_uses

let release_leaks t = List.rev t.release_leaks_
let transfer_sites t = List.rev t.transfer_sites_
let spsc_sites t = List.rev t.spsc_sites_

(* ---- In-process typing, for fixtures and tests ---- *)

let typing_ready = ref false

let ensure_typing () =
  if not !typing_ready then begin
    Compmisc.init_path ();
    typing_ready := true
  end

let add_typed_source t ~unit_name ~file ~source =
  ensure_typing ();
  Hashtbl.replace t.known_units unit_name ();
  Hashtbl.replace t.unit_files unit_name file;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Location.init lexbuf file;
  let parsed = Parse.implementation lexbuf in
  let str, _, _, _, _ = Typemod.type_structure env parsed in
  index_implementation t ~unit_name ~file str

let add_typed_interface t ~unit_name ~file ~source =
  ensure_typing ();
  Hashtbl.replace t.known_units unit_name ();
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Location.init lexbuf file;
  let parsed = Parse.interface lexbuf in
  let sg = Typemod.type_interface env parsed in
  index_interface t ~unit_name ~file sg
