(* Cross-cutting invariants: jitter cannot reorder a port's packets,
   collector state stays bounded, event cooldown is respected. *)

open Testbed
module Collector = Planck_collector.Collector
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr

let pipeline_jitter_preserves_order () =
  (* Back-to-back line-rate arrivals on one ingress port must forward
     in order despite the randomized pipeline latency. *)
  let e = Engine.create () in
  let sw =
    Switch.create e ~name:"jitter" ~ports:2 ~config:Switch.default_config ()
  in
  let seen = ref [] in
  Switch.connect sw ~port:1 ~rate:rate_10g ~prop_delay:0
    ~deliver:(fun p ->
      match P.tcp_headers p with
      | Some (_, tcp) -> seen := tcp.H.Tcp.seq :: !seen
      | None -> ())
    ();
  Switch.connect sw ~port:0 ~rate:rate_10g ~prop_delay:0
    ~deliver:(fun _ -> ())
    ();
  Switch.add_route sw (Mac.host 1) 1;
  (* Arrivals at exactly the 1514-byte line-rate spacing. *)
  for i = 0 to 499 do
    Engine.schedule e ~delay:(i * 1212) (fun () ->
        Switch.ingress sw ~port:0
          (P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1)
             ~src_ip:(Ip.host 0) ~dst_ip:(Ip.host 1) ~src_port:1 ~dst_port:2
             ~seq:(i * 1460) ~ack_seq:0 ~flags:H.Tcp_flags.ack
             ~payload_len:1460 ()))
  done;
  Engine.run e;
  let order = List.rev !seen in
  Alcotest.(check int) "all forwarded" 500 (List.length order);
  Alcotest.(check bool) "strictly increasing" true
    (List.for_all2 ( = ) order (List.sort compare order))

let vantage_ring_bounded () =
  let tb = single_switch ~hosts:4 () in
  let config =
    { Collector.default_config with Collector.vantage_capacity = 64 }
  in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ~config ()
  in
  Collector.attach collector;
  ignore (start_flow tb ~src:0 ~dst:1 ~size:(4 * 1024 * 1024) ());
  Engine.run ~until:(Time.ms 10) tb.engine;
  Alcotest.(check int) "ring holds exactly its capacity" 64
    (Collector.vantage_count collector);
  Alcotest.(check bool) "saw far more samples than retained" true
    (Collector.samples_seen collector > 1000)

let event_cooldown_respected () =
  let tb = single_switch ~hosts:4 () in
  let config =
    { Collector.default_config with Collector.event_cooldown = Time.ms 2 }
  in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ~config ()
  in
  Collector.attach collector;
  let stamps = ref [] in
  Collector.subscribe_congestion collector ~threshold:0.3 (fun e ->
      stamps := e.Collector.time :: !stamps);
  ignore (start_flow tb ~src:0 ~dst:2 ~size:(30 * 1024 * 1024) ());
  ignore (start_flow tb ~src:1 ~dst:2 ~size:(30 * 1024 * 1024) ());
  Engine.run ~until:(Time.ms 25) tb.engine;
  let sorted = List.sort compare !stamps in
  let rec gaps_ok = function
    | a :: (b :: _ as rest) -> b - a >= Time.ms 2 && gaps_ok rest
    | _ -> true
  in
  Alcotest.(check bool) "several events" true (List.length sorted >= 3);
  Alcotest.(check bool) "spaced by cooldown" true (gaps_ok sorted)

let utilization_decays_after_flows_end () =
  let tb = single_switch ~hosts:4 () in
  let collector =
    Collector.create tb.engine ~switch:0 ~routing:tb.routing
      ~link_rate:rate_10g ()
  in
  Collector.attach collector;
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(4 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 6) tb.engine;
  Alcotest.(check bool) "busy while running" true
    (Rate.to_gbps (Collector.link_utilization collector ~port:1) > 3.0);
  Engine.run ~until:(Time.ms 40) tb.engine;
  Alcotest.(check bool) "flow finished" true (Flow.completed flow);
  Alcotest.(check (float 0.01)) "idle after timeout" 0.0
    (Rate.to_gbps (Collector.link_utilization collector ~port:1))

let buffer_pool_balances_after_drain () =
  (* Ownership invariant behind the release-leak lint rule: every byte
     try_alloc admits is owned by exactly one txport until departure
     releases it, so a congested run that drops plenty must still
     return the pool to zero once every queue drains. *)
  let e = Engine.create () in
  let config =
    { Switch.default_config with Switch.buffer_total = 64 * 1024 }
  in
  let sw = Switch.create e ~name:"pool" ~ports:2 ~config () in
  Switch.connect sw ~port:1 ~rate:(Rate.mbps 100.0) ~prop_delay:0
    ~deliver:(fun _ -> ())
    ();
  Switch.connect sw ~port:0 ~rate:rate_10g ~prop_delay:0
    ~deliver:(fun _ -> ())
    ();
  Switch.add_route sw (Mac.host 1) 1;
  (* A line-rate burst into a 100 Mb/s egress: the shared buffer fills
     and admission starts refusing. *)
  for i = 0 to 499 do
    Engine.schedule e ~delay:(i * 1212) (fun () ->
        Switch.ingress sw ~port:0
          (P.tcp ~src_mac:(Mac.host 0) ~dst_mac:(Mac.host 1)
             ~src_ip:(Ip.host 0) ~dst_ip:(Ip.host 1) ~src_port:1 ~dst_port:2
             ~seq:(i * 1460) ~ack_seq:0 ~flags:H.Tcp_flags.ack
             ~payload_len:1460 ()))
  done;
  Alcotest.(check int) "pool starts empty" 0 (Switch.buffer_used sw);
  Engine.run e;
  Alcotest.(check bool) "the run was actually congested" true
    (Switch.total_data_drops sw > 0);
  Alcotest.(check int) "every admitted byte returned to the pool" 0
    (Switch.buffer_used sw)

let tests =
  [
    Alcotest.test_case "jitter preserves per-port order" `Quick
      pipeline_jitter_preserves_order;
    Alcotest.test_case "buffer pool balances after drain" `Quick
      buffer_pool_balances_after_drain;
    Alcotest.test_case "vantage ring bounded" `Quick vantage_ring_bounded;
    Alcotest.test_case "event cooldown respected" `Quick
      event_cooldown_respected;
    Alcotest.test_case "utilization decays after flows end" `Quick
      utilization_decays_after_flows_end;
  ]
