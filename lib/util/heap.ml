(* A standard array-backed binary min-heap. Each entry carries a strictly
   increasing sequence number so that equal keys pop in insertion order,
   which the simulator relies on for deterministic event ordering. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* Total from any state: [fill] seeds fresh slots, so growing works even
   when the backing array is empty (no [h.data.(0)] dummy read). *)
let ensure_capacity h fill =
  if h.size = Array.length h.data then begin
    let capacity = max 16 (2 * Array.length h.data) in
    let data = Array.make capacity fill in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && entry_lt h.data.(left) h.data.(!smallest) then
    smallest := left;
  if right < h.size && entry_lt h.data.(right) h.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  ensure_capacity h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_key h = if h.size = 0 then None else Some h.data.(0).key

let peek h =
  if h.size = 0 then None
  else
    let top = h.data.(0) in
    Some (top.key, top.value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end

let clear h = h.size <- 0
