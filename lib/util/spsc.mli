(** Single-producer single-consumer unbounded queue.

    The cross-shard channel primitive: exactly one domain pushes and
    exactly one domain pops. Built as a linked list with a sentinel
    node — the producer owns the tail, the consumer owns the head, and
    the only shared word per node is its [next] pointer, published with
    an [Atomic] store so the payload written before the link is visible
    to the consumer that follows it.

    Both operations are wait-free; neither blocks on the other. A
    producer may keep pushing while the consumer drains, which is
    exactly the overlap the shard round protocol produces (shard A can
    enter window [n] and transmit while shard B still drains window
    [n-1] arrivals from the same channel). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Producer side only. *)

val pop : 'a t -> 'a option
(** Consumer side only. [None] when the queue is observed empty. *)

val peek : 'a t -> 'a option
(** Consumer side only: the element {!pop} would return, without
    consuming it. Lets the shard drain stop at the first element
    stamped with a window it must not consume yet. *)

val drain : 'a t -> ('a -> unit) -> unit
(** Consumer side only: pop until empty, applying [f] in FIFO order. *)

val set_debug : bool -> unit
(** Process-wide toggle for the dynamic role check — the runtime
    complement of the static [spsc-role-confinement] lint rule (which
    cannot distinguish N shard instances of one shard-body def). When
    on, the first domain to push a given channel claims its producer
    slot and the first to pop/peek claims its consumer slot; a later
    push/pop/peek from a different domain raises [Failure]. Claims are
    per-channel and permanent for the channel's lifetime; leave the
    toggle off in production runs (the check costs two atomic reads
    per operation). *)
