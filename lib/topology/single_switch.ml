let build engine ~hosts ~switch_config ~link_rate ?host_stack ?sharding ~prng () =
  let fabric =
    Fabric.build engine ~switch_ports:(hosts + 1) ~switch_config ~link_rate
      ?host_stack ?sharding ~num_switches:1 ~num_hosts:hosts ~prng ()
  in
  for h = 0 to hosts - 1 do
    Fabric.wire_host fabric ~host:h ~switch:0 ~port:h
  done;
  Fabric.reserve_monitor fabric ~switch:0 ~port:hosts;
  fabric

let tree_out_ports ~hosts:_ ~dst = [| dst |]
