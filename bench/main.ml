(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index), plus Bechamel
   microbenchmarks of the hot paths.

     dune exec bench/main.exe                 # everything, reduced scale
     dune exec bench/main.exe -- fig14 fig17  # a subset
     dune exec bench/main.exe -- --full       # paper-scale (slow)
     dune exec bench/main.exe -- --list       # what exists
     dune exec bench/main.exe -- fig15 --json out.json   # machine-readable
     dune exec bench/main.exe -- fig13 --trace-out t.json  # Perfetto trace
*)

module Json = Planck_telemetry.Json
module Metrics = Planck_telemetry.Metrics
module Trace = Planck_telemetry.Trace
module Export = Planck_telemetry.Export
module Journal = Planck_telemetry.Journal
module Timeseries = Planck_telemetry.Timeseries
module Time = Planck.Util.Time

let experiments : (string * string * (Exp_common.opts -> unit)) list =
  [
    ( "table1",
      "measurement speed comparison (Planck vs published systems)",
      Exp_table1.run );
    ( "fig2-4",
      "impact of oversubscribed mirroring on loss/latency/throughput",
      Exp_mirror_impact.run );
    ("fig5-7", "sample burst and inter-arrival structure", Exp_samples.run);
    ( "fig8-9",
      "sample latency under congestion and vs oversubscription (+ fig12)",
      Exp_latency.run );
    ( "fig10-11",
      "throughput estimation: smoothing and accuracy",
      Exp_estimation.run );
    ( "fig13-16",
      "shadow-MAC routes, control-loop timeline, ARP vs OpenFlow",
      Exp_reroute.run );
    ("fig14-18", "traffic-engineering evaluation", Exp_te.run);
    ( "sec9-1",
      "scalability plan: collectors per datacenter",
      Exp_scalability.run );
    ( "ablations",
      "design-choice ablations (arbitration, buffers, estimator, TE)",
      Exp_ablations.run );
    ( "bounded-state",
      "sketch tier vs exact flow table: state at 1M flows, accuracy, TE \
       agreement",
      Exp_bounded_state.run );
  ]

let run_selected names opts with_micro =
  let t0 = Unix.gettimeofday () in
  let selected =
    match names with
    | [] -> experiments
    | names ->
        List.filter
          (fun (name, _, _) ->
            List.exists
              (fun n ->
                n = name
                || (String.length n < String.length name
                    && String.sub name 0 (String.length n) = n))
              names)
          experiments
  in
  if selected = [] && not with_micro then begin
    Printf.eprintf "no experiment matches %s\n" (String.concat ", " names);
    exit 1
  end;
  let timed =
    List.map
      (fun (name, _, run) ->
        let t = Unix.gettimeofday () in
        let ok =
          try
            run opts;
            true
          with exn ->
            Printf.printf "  [%s FAILED: %s]\n%!" name (Printexc.to_string exn);
            false
        in
        let wall = Unix.gettimeofday () -. t in
        Printf.printf "  [%s took %.1fs]\n%!" name wall;
        (name, wall, ok))
      selected
  in
  let micro = if with_micro then Micro.run () else [] in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\nTotal wall time: %.1fs\n%!" total;
  (timed, total, micro)

(* The machine-readable emitter behind --json: one document per
   invocation, so perf trajectories (BENCH_*.json) can accumulate
   across PRs. The [metrics] member is the process-wide telemetry
   snapshot, giving every bench id a common vocabulary of internals
   (events processed, drops, sample counts, ...) for free. *)
let emit_json path timed total micro =
  let doc =
    Json.Obj
      [
        ( "id",
          Json.String
            (String.concat "+" (List.map (fun (name, _, _) -> name) timed)) );
        ( "experiments",
          Json.List
            (List.map
               (fun (name, wall, ok) ->
                 Json.Obj
                   [
                     ("id", Json.String name);
                     ("wall_time", Json.Float wall);
                     ("ok", Json.Bool ok);
                   ])
               timed) );
        ( "micro",
          Json.List
            (List.map
               (fun (name, ns_per_op) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("ns_per_op", Json.Float ns_per_op);
                   ])
               micro) );
        ( "metrics",
          match Json.member (Export.metrics_to_json Metrics.default) "metrics"
          with
          | Some metrics -> metrics
          | None -> Json.List [] );
        ("wall_time", Json.Float total);
      ]
  in
  Export.write_file ~path (Json.to_string doc);
  Printf.printf "wrote bench results to %s\n%!" path

open Cmdliner

let names =
  let doc =
    "Experiments to run (prefix match), e.g. fig14. Default: all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let runs =
  let doc = "Repetitions for multi-run experiments." in
  Arg.(value & opt int Exp_common.default_opts.Exp_common.runs
       & info [ "runs" ] ~doc)

let full =
  let doc =
    "Use paper-scale parameters (15-run averages, up to multi-GiB flows). \
     Slow: expect hours."
  in
  Arg.(value & flag & info [ "full" ] ~doc)

let seed =
  let doc = "Base random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let list_flag =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let micro_flag =
  let doc = "Also run the Bechamel microbenchmarks." in
  Arg.(value & flag & info [ "micro" ] ~doc)

let json_out =
  let doc =
    "Write a machine-readable summary {id, experiments, metrics, wall_time} \
     to $(docv). Implies telemetry collection."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc = "Enable telemetry and write the metric snapshot as JSON." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc =
    "Enable sim-time tracing and write a Chrome trace_event JSON (open in \
     chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let journal_out =
  let doc =
    "Enable the flight-recorder journal and stream every event (drops, \
     congestion, reroute stages, ...) across all selected experiments as \
     NDJSON to $(docv); analyse with 'planck-cli inspect'."
  in
  Arg.(value & opt (some string) None & info [ "journal-out" ] ~docv:"FILE" ~doc)

let timeseries_out =
  let doc =
    "Record ground-truth time-series (link utilization, buffers, true vs \
     estimated flow rates) for each experiment run and write the last run's \
     CSV to $(docv)."
  in
  Arg.(value & opt (some string) None
       & info [ "timeseries-out" ] ~docv:"FILE" ~doc)

let timeseries_interval_us =
  let doc = "Sampling interval for --timeseries-out, microseconds." in
  Arg.(value & opt int 500 & info [ "timeseries-interval-us" ] ~docv:"US" ~doc)

let main names runs full seed list_experiments with_micro json_path
    metrics_path trace_path journal_path timeseries_path
    timeseries_interval_us =
  if list_experiments then begin
    List.iter
      (fun (name, doc, _) -> Printf.printf "%-10s %s\n" name doc)
      experiments;
    Printf.printf "%-10s %s\n" "(--micro)" "Bechamel hot-path microbenchmarks"
  end
  else begin
    (* Probe each output path before spending minutes on experiments. *)
    List.iter
      (Option.iter (fun path ->
           try Export.write_file ~path ""
           with Sys_error msg ->
             Printf.eprintf "planck-bench: cannot write %s\n" msg;
             exit 1))
      [ json_path; metrics_path; trace_path; journal_path; timeseries_path ];
    if json_path <> None || metrics_path <> None then
      Metrics.set_enabled Metrics.default true;
    if trace_path <> None then Trace.set_enabled Trace.default true;
    if journal_path <> None then Journal.set_enabled Journal.default true;
    (* Stream journal events as they record: experiments produce far more
       than the in-memory ring holds, the NDJSON file is complete. *)
    let journal_lines = ref 0 in
    let journal_channel =
      Option.map
        (fun path ->
          let oc = open_out path in
          Journal.set_writer Journal.default
            (Some
               (fun line ->
                 incr journal_lines;
                 output_string oc line;
                 output_char oc '\n'));
          oc)
        journal_path
    in
    (* Ground truth hooks in through the experiment observer, since each
       experiment run builds its testbed internally. Last run wins. *)
    let last_recorder = ref None in
    if timeseries_path <> None then
      Planck.Experiment.set_observer
        (Some
           (fun testbed deployed ->
             let estimate =
               match deployed.Planck.Scheme.controller with
               | Some controller ->
                   Planck.Controller_lib.Controller.flow_rate controller
               | None -> fun _ -> None
             in
             let recorder =
               Planck.Recorder.create
                 ~interval:(Time.us timeseries_interval_us)
                 ~estimate testbed
             in
             last_recorder := Some recorder;
             Some (fun flow -> Planck.Recorder.track_flow recorder flow)));
    let opts =
      {
        Exp_common.runs;
        full;
        seed;
        verbose = false;
      }
    in
    let timed, total, micro = run_selected names opts with_micro in
    Planck.Experiment.set_observer None;
    (match journal_channel with
    | Some oc ->
        Journal.set_writer Journal.default None;
        close_out oc;
        Printf.printf "wrote %d journal events to %s\n%!" !journal_lines
          (Option.get journal_path)
    | None -> ());
    Option.iter
      (fun path ->
        match !last_recorder with
        | Some recorder ->
            let ts = Planck.Recorder.timeseries recorder in
            Export.write_file ~path (Timeseries.to_csv ts);
            Printf.printf "wrote %d time-series rows (%d series) to %s\n%!"
              (List.length (Timeseries.rows ts))
              (List.length (Timeseries.names ts))
              path
        | None ->
            Printf.printf
              "no time-series recorded (no selected experiment ran a \
               workload through the experiment harness)\n%!")
      timeseries_path;
    Option.iter (fun path -> emit_json path timed total micro) json_path;
    Option.iter
      (fun path ->
        Export.write_file ~path (Export.metrics_json Metrics.default);
        Printf.printf "wrote %d metrics to %s\n%!"
          (Metrics.size Metrics.default)
          path)
      metrics_path;
    Option.iter
      (fun path ->
        Export.write_file ~path (Trace.to_chrome_json Trace.default);
        Printf.printf
          "wrote %d trace events to %s (open in chrome://tracing or \
           Perfetto)\n\
           %!"
          (Trace.length Trace.default) path)
      trace_path
  end

let cmd =
  let doc =
    "Regenerate the tables and figures of 'Planck: millisecond-scale \
     monitoring and control for commodity networks' (SIGCOMM 2014)"
  in
  Cmd.v
    (Cmd.info "planck-bench" ~doc)
    Term.(
      const main $ names $ runs $ full $ seed $ list_flag $ micro_flag
      $ json_out $ metrics_out $ trace_out $ journal_out $ timeseries_out
      $ timeseries_interval_us)

let () = exit (Cmd.eval cmd)
