module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Ring = Planck_util.Ring
module Engine = Planck_netsim.Engine
module Sink = Planck_netsim.Sink
module Packet = Planck_packet.Packet
module Headers = Planck_packet.Headers
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ipv4_addr = Planck_packet.Ipv4_addr
module Pcap = Planck_packet.Pcap
module Routing = Planck_topology.Routing
module Fabric = Planck_topology.Fabric
module Metrics = Planck_telemetry.Metrics
module Trace = Planck_telemetry.Trace
module Journal = Planck_telemetry.Journal

let log = Logs.Src.create "planck.collector" ~doc:"Planck collector"

module Log = (val Logs.src_log log)

type sample = {
  rx : Time.t;
  arrival : Time.t;
  packet : Packet.t;
  key : Flow_key.t option;
  payload : int;
  seq32 : int option;
  in_port : int;
  out_port : int;
}

type flow_event_kind = Flow_started | Flow_ended

type flow_event = { time : Time.t; flow : Flow_key.t; kind : flow_event_kind }

type congestion = {
  time : Time.t;
  switch : int;
  port : int;
  utilization : Rate.t;
  capacity : Rate.t;
  flows : (Flow_key.t * Rate.t * Mac.t) list;
  corr : int;
}

(* The flow-state backend the sample path writes through. [b_table] is
   the exact tier every query (active flows, link utilization, rates)
   runs against; [b_sample] admits a data sample and returns the entry
   to account it to, or [None] when the backend keeps the flow in
   approximate state only (the sketch tier); [b_tick] is per-sample
   housekeeping (decay clocks, demotion sweeps) and must be cheap when
   nothing is due. *)
type table_backend = {
  b_table : Flow_table.t;
  b_sample :
    key:Flow_key.t ->
    now:Time.t ->
    bytes:int ->
    max_rate:Rate.t ->
    dst_mac:Mac.t ->
    Flow_table.entry option;
  b_tick : now:Time.t -> unit;
}

(* A factory rather than a shared backend value: one collector config is
   reused across every monitored switch (Controller.create), and each
   switch needs its own state. *)
type table_kind =
  | Exact
  | Custom_backend of (switch:int -> flow_timeout:Time.t -> table_backend)

type config = {
  min_gap : Time.t;
  max_burst : Time.t;
  flow_timeout : Time.t;
  event_cooldown : Time.t;
  vantage_capacity : int;
  ring_capacity : int;
  poll_interval : Time.t;
  table : table_kind;
}

let default_config =
  {
    min_gap = Time.us 200;
    max_burst = Time.us 700;
    flow_timeout = Time.ms 10;
    event_cooldown = Time.ms 1;
    vantage_capacity = 8192;
    ring_capacity = 2048;
    poll_interval = Time.us 25;
    table = Exact;
  }

let exact_backend ~flow_timeout =
  let flows = Flow_table.create ~timeout:flow_timeout () in
  {
    b_table = flows;
    b_sample =
      (fun ~key ~now ~bytes:_ ~max_rate ~dst_mac ->
        Some (Flow_table.touch flows ~key ~time:now ~max_rate ~dst_mac ()));
    b_tick = (fun ~now:_ -> ());
  }

type subscription = { threshold : float; callback : congestion -> unit }

type t = {
  engine : Engine.t;
  switch : int;
  routing : Routing.t;
  link_rate : Rate.t;
  config : config;
  backend : table_backend;
  flows : Flow_table.t;  (* = backend.b_table; the query surface *)
  mutable sink : Sink.t option;
  (* (src ip, routing dst MAC) -> (in_port, out_port) at this switch;
     trees are static so entries never go stale. *)
  port_cache : (int * Mac.t, int * int) Hashtbl.t;
  vantage : (Time.t * Packet.t) Ring.t;
  mutable subscriptions : subscription list;
  mutable taps : (sample -> unit) list;
  mutable flow_event_subs : (flow_event -> unit) list;
  mutable estimate_hooks : (Flow_key.t -> Rate.t -> Time.t -> unit) list;
  last_event : (int, Time.t) Hashtbl.t; (* port -> last event time *)
  mutable samples_seen : int;
  mutable data_samples : int;
  mutable parse_errors : int;
  (* Telemetry handles, labelled "s<switch>" in the process-wide
     registry. Sample latency is rx - arrival: the netmap batching
     delay the sink adds (the "collector" slice of Fig 12). *)
  tel_samples : Metrics.counter;
  tel_data_samples : Metrics.counter;
  tel_parse_errors : Metrics.counter;
  tel_estimates : Metrics.counter;
  tel_congestion_events : Metrics.counter;
  tel_poll_latency : Metrics.histogram;
  tel_flow_entries : Metrics.gauge;
  tel_evictions : Metrics.counter;
}

let create engine ~switch ~routing ~link_rate ?(config = default_config) () =
  let tel_label = Printf.sprintf "s%d" switch in
  let tel name = Metrics.counter ~subsystem:"collector" ~name ~label:tel_label () in
  let backend =
    match config.table with
    | Exact -> exact_backend ~flow_timeout:config.flow_timeout
    | Custom_backend make -> make ~switch ~flow_timeout:config.flow_timeout
  in
  let tel_evictions = tel "flow_table_evictions" in
  Flow_table.add_on_expire backend.b_table (fun ~now:_ _entry ->
      Metrics.Counter.incr tel_evictions);
  {
    engine;
    switch;
    routing;
    link_rate;
    config;
    backend;
    flows = backend.b_table;
    sink = None;
    port_cache = Hashtbl.create 256;
    vantage = Ring.create ~capacity:config.vantage_capacity;
    subscriptions = [];
    taps = [];
    flow_event_subs = [];
    estimate_hooks = [];
    last_event = Hashtbl.create 16;
    samples_seen = 0;
    data_samples = 0;
    parse_errors = 0;
    tel_samples = tel "samples";
    tel_data_samples = tel "data_samples";
    tel_parse_errors = tel "parse_errors";
    tel_estimates = tel "estimate_updates";
    tel_congestion_events = tel "congestion_events";
    tel_poll_latency =
      Metrics.histogram ~subsystem:"collector" ~name:"poll_latency_ns"
        ~label:tel_label ();
    tel_flow_entries =
      Metrics.gauge ~subsystem:"collector" ~name:"flow_table_entries"
        ~label:tel_label ();
    tel_evictions;
  }

let switch_id t = t.switch

(* ---- Port inference (§4.2) ---- *)

let infer_ports t ~src_ip ~dst_mac =
  let cache_key = (Ipv4_addr.to_int src_ip, dst_mac) in
  match Hashtbl.find_opt t.port_cache cache_key with
  | Some ports -> ports
  | None ->
      let ports =
        match Ipv4_addr.host_id src_ip with
        | None -> (-1, -1)
        | Some src -> (
            match Routing.path t.routing ~src ~dst_mac with
            | exception Invalid_argument _ -> (-1, -1)
            | hops -> (
                match
                  List.find_opt
                    (fun hop -> hop.Routing.switch = t.switch)
                    hops
                with
                | Some hop -> (hop.Routing.in_port, hop.Routing.out_port)
                | None -> (-1, -1)))
      in
      Hashtbl.replace t.port_cache cache_key ports;
      ports

(* ---- Event generation ---- *)

let link_utilization t ~port =
  let now = Engine.now t.engine in
  List.fold_left
    (fun acc entry -> acc +. Flow_table.rate entry)
    0.0
    (Flow_table.active_on_port t.flows ~now ~out_port:port)

let flows_on_port t ~port =
  let now = Engine.now t.engine in
  List.map
    (fun entry ->
      (entry.Flow_table.key, Flow_table.rate entry, entry.Flow_table.dst_mac))
    (Flow_table.active_on_port t.flows ~now ~out_port:port)

let check_congestion t ~port =
  if port >= 0 && t.subscriptions <> [] then begin
    let now = Engine.now t.engine in
    let cooled =
      match Hashtbl.find_opt t.last_event port with
      | Some last -> now - last >= t.config.event_cooldown
      | None -> true
    in
    if cooled then begin
      let utilization = link_utilization t ~port in
      let interested =
        List.filter
          (fun sub -> utilization >= sub.threshold *. t.link_rate)
          t.subscriptions
      in
      if interested <> [] then begin
        Log.debug (fun m ->
            m "s%d: port %d utilization %.2f Gbps crossed a threshold"
              t.switch port (utilization /. 1e9));
        Hashtbl.replace t.last_event port now;
        Metrics.Counter.incr t.tel_congestion_events;
        Trace.instant Trace.default ~now ~cat:"collector"
          ~name:"congestion_detected"
          ~args:
            [
              ("switch", Trace.Int t.switch);
              ("port", Trace.Int port);
              ("gbps", Trace.Float (utilization /. 1e9));
            ]
          ();
        (* Mint the correlation id that names this control loop: every
           journal event downstream (notify, decide, install,
           effective) carries it, so Inspect can decompose the loop
           into the Fig 12/15 stages. *)
        let corr = Journal.next_corr Journal.default in
        let event =
          {
            time = now;
            switch = t.switch;
            port;
            utilization;
            capacity = t.link_rate;
            flows = flows_on_port t ~port;
            corr;
          }
        in
        if Journal.enabled Journal.default then
          Journal.record Journal.default ~ts:now ~corr
            (Journal.Congestion_detected
               {
                 switch = t.switch;
                 port;
                 gbps = utilization /. 1e9;
                 capacity_gbps = t.link_rate /. 1e9;
                 flows = List.length event.flows;
               });
        List.iter (fun sub -> sub.callback event) interested
      end
    end
  end

(* ---- Sample processing ---- *)

let process t (record : Sink.record) =
  t.samples_seen <- t.samples_seen + 1;
  Metrics.Counter.incr t.tel_samples;
  Metrics.Histogram.observe t.tel_poll_latency
    (record.Sink.rx - record.Sink.arrival);
  match Packet.parse record.Sink.wire ~wire_size:record.Sink.wire_size with
  | None ->
      t.parse_errors <- t.parse_errors + 1;
      Metrics.Counter.incr t.tel_parse_errors
  | Some packet ->
      if Ring.is_full t.vantage then ignore (Ring.pop t.vantage);
      ignore (Ring.push t.vantage (record.Sink.rx, packet));
      let key = Flow_key.of_packet packet in
      let payload = Packet.tcp_payload_len packet in
      let seq32 =
        match Packet.tcp_headers packet with
        | Some (_, tcp) -> Some tcp.Headers.Tcp.seq
        | None -> None
      in
      let in_port, out_port =
        match key with
        | Some k -> infer_ports t ~src_ip:k.Flow_key.src_ip
                      ~dst_mac:(Packet.dst_mac packet)
        | None -> (-1, -1)
      in
      (match key with
      | Some key when t.flow_event_subs <> [] -> (
          match Packet.tcp_headers packet with
          | Some (_, tcp) ->
              let f = tcp.Headers.Tcp.flags in
              let kind =
                if f.Headers.Tcp_flags.syn then Some Flow_started
                else if f.Headers.Tcp_flags.fin || f.Headers.Tcp_flags.rst
                then Some Flow_ended
                else None
              in
              (match kind with
              | Some kind ->
                  let event = { time = record.Sink.rx; flow = key; kind } in
                  List.iter (fun sub -> sub event) t.flow_event_subs
              | None -> ())
          | None -> ())
      | Some _ | None -> ());
      (match (key, seq32) with
      | Some key, Some seq32 when payload > 0 -> (
          t.data_samples <- t.data_samples + 1;
          Metrics.Counter.incr t.tel_data_samples;
          t.backend.b_tick ~now:record.Sink.rx;
          match
            t.backend.b_sample ~key ~now:record.Sink.rx ~bytes:payload
              ~max_rate:t.link_rate
              ~dst_mac:(Packet.dst_mac packet)
          with
          | None ->
              (* Sketch tier only: the sample is accounted approximately
                 and the flow has no exact entry (yet). *)
              Metrics.Gauge.set_int t.tel_flow_entries
                (Flow_table.size t.flows)
          | Some entry ->
          entry.Flow_table.in_port <- in_port;
          entry.Flow_table.out_port <- out_port;
          entry.Flow_table.sampled_packets <-
            entry.Flow_table.sampled_packets + 1;
          entry.Flow_table.sampled_bytes <-
            entry.Flow_table.sampled_bytes + payload;
          Flow_table.note_seq entry ~seq32 ~payload;
          Metrics.Gauge.set_int t.tel_flow_entries (Flow_table.size t.flows);
          (match
             Rate_estimator.update entry.Flow_table.estimator
               ~time:record.Sink.rx ~seq32
           with
          | Some rate ->
              Metrics.Counter.incr t.tel_estimates;
              if Journal.enabled Journal.default then
                Journal.record Journal.default ~ts:record.Sink.rx
                  (Journal.Estimate_update
                     {
                       switch = t.switch;
                       (* planck-lint: allow hot-alloc -- journal-enabled runs only; the disabled path pays the one branch above *)
                       flow = Format.asprintf "%a" Flow_key.pp key;
                       gbps = rate /. 1e9;
                     });
              List.iter
                (fun hook -> hook key rate record.Sink.rx)
                t.estimate_hooks;
              check_congestion t ~port:out_port
          | None -> ()))
      | _ -> ());
      if t.taps <> [] then begin
        let sample =
          {
            rx = record.Sink.rx;
            arrival = record.Sink.arrival;
            packet;
            key;
            payload;
            seq32;
            in_port;
            out_port;
          }
        in
        List.iter (fun tap -> tap sample) t.taps
      end

let attach t =
  match t.sink with
  | Some _ -> invalid_arg "Collector.attach: already attached"
  | None ->
      let sink =
        Sink.create t.engine ~ring_capacity:t.config.ring_capacity
          ~poll_interval:t.config.poll_interval
          ~label:(Printf.sprintf "s%d" t.switch)
          ~consumer:(fun record -> process t record)
          ()
      in
      t.sink <- Some sink;
      Fabric.attach_sink
        (Routing.fabric t.routing)
        ~switch:t.switch
        ~deliver:(Sink.ingress sink)

(* ---- Queries & subscriptions ---- *)

let flow_rate t key =
  match Flow_table.find t.flows key with
  | None -> None
  | Some entry -> Rate_estimator.current entry.Flow_table.estimator

let samples_seen t = t.samples_seen
let data_samples t = t.data_samples
let flows_tracked t = Flow_table.size t.flows
let parse_errors t = t.parse_errors

let subscribe_congestion t ~threshold callback =
  t.subscriptions <- { threshold; callback } :: t.subscriptions

let subscribe_flow_events t callback =
  t.flow_event_subs <- callback :: t.flow_event_subs

let flow_sampling_fraction t key =
  match Flow_table.find t.flows key with
  | None -> None
  | Some entry -> Flow_table.sampling_fraction entry

let flow_retransmission_fraction t key =
  match Flow_table.find t.flows key with
  | None -> None
  | Some entry ->
      let data = Rate_estimator.samples entry.Flow_table.estimator in
      if data = 0 then None
      else
        Some
          (float_of_int (Rate_estimator.out_of_order entry.Flow_table.estimator)
          /. float_of_int data)

let set_tap t tap = t.taps <- tap :: t.taps
let on_estimate t hook = t.estimate_hooks <- hook :: t.estimate_hooks

let vantage_pcap t =
  let pcap = Pcap.create () in
  List.iter
    (fun (time, packet) -> Pcap.add pcap ~time packet)
    (Ring.to_list t.vantage);
  Pcap.contents pcap

let vantage_count t = Ring.length t.vantage
