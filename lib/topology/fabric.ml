module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Host = Planck_netsim.Host
module Wiring = Planck_netsim.Wiring
module Shard = Planck_netsim.Shard

type peer =
  | To_host of int
  | To_switch of int * int
  | To_monitor
  | Unwired

type sharding = {
  group : Shard.group;
  shard_of_switch : int -> int;
  shard_of_host : int -> int;
}

type t = {
  engine : Engine.t;
  switches : Switch.t array;
  hosts : Host.t array;
  adjacency : peer array array; (* adjacency.(switch).(port) *)
  host_attach : (int * int) array;
  monitors : int option array;
  link_rate : Rate.t;
  prop_delay : Time.t;
  switch_ports : int;
  sharding : sharding option;
}

let build engine ~switch_ports ~switch_config ~link_rate
    ?(prop_delay = Wiring.default_prop_delay) ?host_stack ?sharding
    ~num_switches ~num_hosts ~prng () =
  let switch_engine i =
    match sharding with
    | None -> engine
    | Some s -> Shard.engine s.group (s.shard_of_switch i)
  in
  let host_engine i =
    match sharding with
    | None -> engine
    | Some s -> Shard.engine s.group (s.shard_of_host i)
  in
  let switches =
    Array.init num_switches (fun i ->
        Switch.create (switch_engine i)
          ~name:(Printf.sprintf "s%d" i)
          ~ports:switch_ports ~config:switch_config
          ~prng:(Prng.split prng) ())
  in
  let hosts =
    Array.init num_hosts (fun i ->
        Host.create (host_engine i) ~id:i ?stack:host_stack
          ~prng:(Prng.split prng) ())
  in
  {
    engine;
    switches;
    hosts;
    adjacency =
      Array.init num_switches (fun _ -> Array.make switch_ports Unwired);
    host_attach = Array.make num_hosts (-1, -1);
    monitors = Array.make num_switches None;
    link_rate;
    prop_delay;
    switch_ports;
    sharding;
  }

let shard_of_switch t sw =
  match t.sharding with None -> 0 | Some s -> s.shard_of_switch sw

let shard_of_host t h =
  match t.sharding with None -> 0 | Some s -> s.shard_of_host h

let shard_group t = Option.map (fun s -> s.group) t.sharding

let check_unwired t ~switch ~port =
  match t.adjacency.(switch).(port) with
  | Unwired -> ()
  | To_host _ | To_switch _ | To_monitor ->
      invalid_arg
        (Printf.sprintf "Fabric: switch %d port %d already wired" switch port)

let wire_host t ~host ~switch ~port =
  check_unwired t ~switch ~port;
  if shard_of_host t host <> shard_of_switch t switch then
    invalid_arg
      (Printf.sprintf
         "Fabric.wire_host: host %d (shard %d) and switch %d (shard %d) \
          must share a shard"
         host (shard_of_host t host) switch (shard_of_switch t switch));
  Wiring.host_to_switch t.hosts.(host) t.switches.(switch) ~port
    ~rate:t.link_rate ~prop_delay:t.prop_delay;
  t.adjacency.(switch).(port) <- To_host host;
  t.host_attach.(host) <- (switch, port)

let wire_switches ?prop_delay t ~a ~port_a ~b ~port_b =
  check_unwired t ~switch:a ~port:port_a;
  check_unwired t ~switch:b ~port:port_b;
  let prop_delay = Option.value prop_delay ~default:t.prop_delay in
  let cross =
    match t.sharding with
    | None -> None
    | Some s ->
        let sa = s.shard_of_switch a and sb = s.shard_of_switch b in
        if sa = sb then None else Some (s.group, sa, sb)
  in
  (match cross with
  | None ->
      Wiring.switch_to_switch t.switches.(a) ~port_a t.switches.(b) ~port_b
        ~rate:t.link_rate ~prop_delay
  | Some (group, sa, sb) ->
      let sw_a = t.switches.(a) and sw_b = t.switches.(b) in
      let handoff_ab =
        Shard.channel group ~src:sa ~dst:sb ~prop_delay
          ~deliver:(fun pkt -> Switch.ingress sw_b ~port:port_b pkt)
      in
      let handoff_ba =
        Shard.channel group ~src:sb ~dst:sa ~prop_delay
          ~deliver:(fun pkt -> Switch.ingress sw_a ~port:port_a pkt)
      in
      Wiring.switch_to_switch_remote sw_a ~port_a sw_b ~port_b
        ~rate:t.link_rate ~prop_delay ~handoff_ab ~handoff_ba);
  t.adjacency.(a).(port_a) <- To_switch (b, port_b);
  t.adjacency.(b).(port_b) <- To_switch (a, port_a)

let reserve_monitor t ~switch ~port =
  check_unwired t ~switch ~port;
  t.adjacency.(switch).(port) <- To_monitor;
  t.monitors.(switch) <- Some port

let engine t = t.engine
let switch_count t = Array.length t.switches
let host_count t = Array.length t.hosts
let switch t i = t.switches.(i)
let host t i = t.hosts.(i)
let hosts t = t.hosts
let link_rate t = t.link_rate
let switch_ports t = t.switch_ports
let peer t ~switch ~port = t.adjacency.(switch).(port)

let host_attachment t ~host =
  let attach = t.host_attach.(host) in
  if fst attach < 0 then
    invalid_arg (Printf.sprintf "Fabric.host_attachment: host %d unwired" host);
  attach

let monitor_port t ~switch = t.monitors.(switch)

let data_ports t ~switch =
  let ports = ref [] in
  Array.iteri
    (fun port -> function
      | To_host _ | To_switch _ -> ports := port :: !ports
      | To_monitor | Unwired -> ())
    t.adjacency.(switch);
  List.rev !ports

let attach_sink t ~switch ~deliver =
  match t.monitors.(switch) with
  | None ->
      invalid_arg
        (Printf.sprintf "Fabric.attach_sink: switch %d has no monitor port"
           switch)
  | Some port ->
      Switch.connect t.switches.(switch) ~port ~rate:t.link_rate
        ~prop_delay:t.prop_delay ~deliver ();
      Switch.set_mirror t.switches.(switch) ~monitor:port
        ~mirrored:(data_ports t ~switch)

let populate_arp t =
  Array.iter
    (fun h ->
      Array.iter
        (fun other ->
          if Host.id other <> Host.id h then
            Host.arp_set h (Host.ip other) (Host.mac other))
        t.hosts)
    t.hosts
