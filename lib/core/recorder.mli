(** Ground-truth time-series recording for a {!Testbed}.

    Wires a {!Planck_telemetry.Timeseries} onto the simulator's own
    state — the quantities a collector can only estimate:

    - [link:s<i>.p<p>:gbps] — true utilization of every wired data
      port, from egress byte deltas per sampling interval;
    - [buf:s<i>:bytes] — per-switch shared-buffer occupancy;
    - [monq:s<i>:bytes] — monitor-port egress queue depth (the
      oversubscribed mirror backlog that dominates Planck's sample
      latency);
    - per tracked flow, [true:<flow>] (sender-acked byte deltas, Gbps)
      next to [est:<flow>] (the collector estimate, Gbps), so
      [planck_cli inspect] can report estimate-vs-truth error.

    Sampling runs on the testbed's engine clock; with no estimate
    source, [est:] columns record [nan]. *)

type t

val create :
  ?interval:Planck_util.Time.t ->
  ?estimate:(Planck_packet.Flow_key.t -> Planck_util.Rate.t option) ->
  Testbed.t ->
  t
(** Register the per-link and per-switch series and start sampling
    every [interval] (default 500 us). [estimate] is typically
    [Controller.flow_rate controller] from the deployed scheme. *)

val timeseries : t -> Planck_telemetry.Timeseries.t

val track_flow : t -> Planck_tcp.Flow.t -> unit
(** Add the [true:]/[est:] series pair for one flow (usually from
    {!Runner}'s [on_flow] hook). *)
