(* sFlow baseline tests: 1-in-N selection, the control-plane rate cap,
   and multiply-by-N estimation accuracy/limits. *)

open Testbed
module Agent = Planck_sflow.Agent
module Estimator = Planck_sflow.Estimator
module Prng = Planck_util.Prng

let with_agent ?(config = Agent.default_config) () =
  let tb = single_switch () in
  let estimator = Estimator.create () in
  let agent =
    Agent.attach tb.engine (Fabric.switch tb.fabric 0) ~config
      ~prng:(Prng.create ~seed:11)
      ~collector:(fun s -> Estimator.add estimator s)
      ()
  in
  (tb, agent, estimator)

let agent_rate_cap () =
  let tb, agent, _est = with_agent () in
  (* A saturated flow forwards ~800k pps; with 1-in-256 selection that
     is ~3k selections/s, but only ~300/s may be exported. *)
  ignore (start_flow tb ~src:0 ~dst:1 ~size:(100 * 1024 * 1024) ());
  Engine.run ~until:(Time.ms 200) tb.engine;
  Alcotest.(check bool) "selections happened" true (Agent.selected agent > 100);
  Alcotest.(check bool) "export rate capped" true
    (Agent.exported agent <= 70 (* 0.2 s * 300/s + burst *));
  Alcotest.(check bool) "throttling recorded" true (Agent.throttled agent > 0);
  Alcotest.(check int) "conservation" (Agent.selected agent)
    (Agent.exported agent + Agent.throttled agent)

let estimator_needs_long_windows () =
  (* Even over a 1 s window, ~300 samples give roughly 11% error; over
     20 ms the estimate is useless. This is the Planck motivation. *)
  let tb, _agent, est = with_agent () in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(500 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 600) tb.engine;
  let now = Engine.now tb.engine in
  let u = Estimator.link_utilization est ~now ~out_port:1 in
  (* The flow runs at ~9.7 Gbps on the wire, but the CPU cap throttles
     samples *after* the 1-in-N selection, so multiply-by-N wildly
     underestimates — exactly the distortion §9.2 describes. *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate distorted low: %.2f Gbps" (Rate.to_gbps u))
    true
    (Rate.to_gbps u > 0.0 && Rate.to_gbps u < 5.0);
  ignore flow;
  Alcotest.(check bool) "samples sparse" true
    (Estimator.samples_in_window est ~now < 400)

let expected_error_formula () =
  Alcotest.(check (float 0.5)) "s=300 error ~11.3%" 11.3
    (Estimator.expected_error ~samples:300);
  Alcotest.(check bool) "zero samples infinite" true
    (Float.is_integer (Estimator.expected_error ~samples:0) = false
    || Estimator.expected_error ~samples:0 = infinity)

let flow_rate_estimation () =
  let config = { Agent.default_config with Agent.max_samples_per_sec = 100_000 } in
  let tb, _agent, est = with_agent ~config () in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(500 * 1024 * 1024) () in
  (* Query while the flow is still running so the aggregation window
     holds only active traffic. *)
  Engine.run ~until:(Time.ms 150) tb.engine;
  let now = Engine.now tb.engine in
  let r = Estimator.flow_rate est ~now (Flow.key flow) in
  let truth = Rate.of_bytes_per (Flow.bytes_acked flow) now in
  (* With an uncapped CPU the 1-in-256 estimate lands near the true
     wire rate (within sampling noise). *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.2f Gbps vs true %.2f" (Rate.to_gbps r)
       (Rate.to_gbps truth))
    true
    (abs_float (Rate.to_gbps r -. Rate.to_gbps truth)
     < 0.25 *. Rate.to_gbps truth)

let tests =
  [
    Alcotest.test_case "control-plane rate cap" `Quick agent_rate_cap;
    Alcotest.test_case "sparse samples over short windows" `Quick
      estimator_needs_long_windows;
    Alcotest.test_case "expected error formula" `Quick expected_error_formula;
    Alcotest.test_case "flow rate estimation (uncapped)" `Quick
      flow_rate_estimation;
  ]
