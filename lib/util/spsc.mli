(** Single-producer single-consumer unbounded queue.

    The cross-shard channel primitive: exactly one domain pushes and
    exactly one domain pops. Built as a linked list with a sentinel
    node — the producer owns the tail, the consumer owns the head, and
    the only shared word per node is its [next] pointer, published with
    an [Atomic] store so the payload written before the link is visible
    to the consumer that follows it.

    Both operations are wait-free; neither blocks on the other. A
    producer may keep pushing while the consumer drains, which is
    exactly the overlap the shard round protocol produces (shard A can
    enter window [n] and transmit while shard B still drains window
    [n-1] arrivals from the same channel). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Producer side only. *)

val pop : 'a t -> 'a option
(** Consumer side only. [None] when the queue is observed empty. *)

val peek : 'a t -> 'a option
(** Consumer side only: the element {!pop} would return, without
    consuming it. Lets the shard drain stop at the first element
    stamped with a window it must not consume yet. *)

val drain : 'a t -> ('a -> unit) -> unit
(** Consumer side only: pop until empty, applying [f] in FIFO order. *)
