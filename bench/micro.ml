(* Bechamel microbenchmarks of the hot paths: packet wire handling, the
   rate estimator, the event queue, and switch forwarding. *)

open Bechamel
open Toolkit
module Time_u = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Heap = Planck_util.Heap
module Wheel = Planck_util.Timer_wheel
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module Ip = Planck_packet.Ipv4_addr
module Seq32 = Planck_packet.Seq32
module Rate_estimator = Planck_collector.Rate_estimator
module Engine = Planck_netsim.Engine
module Switch = Planck_netsim.Switch
module Metrics = Planck_telemetry.Metrics
module Journal = Planck_telemetry.Journal
module Profile = Planck_telemetry.Profile
module Bench_gate = Planck_telemetry.Bench_gate
module FK = Planck_packet.Flow_key
module Flow_table = Planck_collector.Flow_table
module Count_min = Planck_sketch.Count_min
module Tiered = Planck_sketch.Tiered_table

let sample_packet =
  P.tcp ~src_mac:(Mac.host 1) ~dst_mac:(Mac.host 2) ~src_ip:(Ip.host 1)
    ~dst_ip:(Ip.host 2) ~src_port:1234 ~dst_port:80 ~seq:123456
    ~ack_seq:654321 ~flags:H.Tcp_flags.ack
    ~sack:[ (1000, 2000); (3000, 4000) ]
    ~payload_len:1460 ()

let sample_wire = P.to_wire sample_packet

let test_serialize =
  Test.make ~name:"packet serialize (to_wire)"
    (Staged.stage (fun () -> ignore (P.to_wire sample_packet)))

let test_parse =
  Test.make ~name:"packet parse (collector hot path)"
    (Staged.stage (fun () ->
         ignore (P.parse sample_wire ~wire_size:sample_packet.P.wire_size)))

let test_estimator =
  let estimator = Rate_estimator.create () in
  let counter = ref 0 in
  Test.make ~name:"rate estimator update"
    (Staged.stage (fun () ->
         incr counter;
         ignore
           (Rate_estimator.update estimator
              ~time:(!counter * 1168)
              ~seq32:(Seq32.wrap (!counter * 1460)))))

let test_heap =
  let heap = Heap.create () in
  let prng = Prng.create ~seed:1 in
  Test.make ~name:"event heap add+pop"
    (Staged.stage (fun () ->
         Heap.add heap ~key:(Prng.int prng 1_000_000) ();
         ignore (Heap.pop heap)))

(* ---- event-queue trajectory: min-heap baseline vs timer wheel ----

   The same timer-shaped workload (a monotone clock, ~90% of delays
   inside the wheel horizon, 10% in overflow) driven through the raw
   heap and through the wheel, so BENCH_*.json carries both sides of
   the comparison the scheduler rework is justified by. *)

let timer_delay prng =
  if Prng.int prng 100 < 90 then Prng.int prng 1_000_000 (* <=1ms: in-wheel *)
  else Prng.int prng 100_000_000 (* <=100ms: overflow tier *)

let queue_transient_heap =
  let heap = Heap.create () in
  let prng = Prng.create ~seed:2 in
  let now = ref 0 in
  Test.make ~name:"event-queue transient add+pop (heap baseline)"
    (Staged.stage (fun () ->
         Heap.add heap ~key:(!now + timer_delay prng) ();
         match Heap.pop heap with
         | Some (key, ()) -> now := key
         | None -> ()))

let queue_transient_wheel ~name config seed =
  let wheel = Wheel.create ~config () in
  let prng = Prng.create ~seed in
  let now = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Wheel.add wheel ~key:(!now + timer_delay prng) ());
         match Wheel.pop wheel with
         | Some (key, ()) -> now := key
         | None -> ()))

(* Steady state: the queue holds ~8k pending timers (a large testbed's
   worth of RTOs, drain polls, and sampling clocks) while events churn
   through it. This is where heap add/pop pays O(log n) against the
   wheel's O(1) slot insert. *)
let queue_steady_heap =
  let heap = Heap.create () in
  let prng = Prng.create ~seed:4 in
  let now = ref 0 in
  for _ = 1 to 8_192 do
    Heap.add heap ~key:(timer_delay prng) ()
  done;
  Test.make ~name:"event-queue 8k-pending add+pop (heap baseline)"
    (Staged.stage (fun () ->
         match Heap.pop heap with
         | Some (key, ()) ->
             now := key;
             Heap.add heap ~key:(!now + timer_delay prng) ()
         | None -> ()))

let queue_steady_wheel ~name config seed =
  let wheel = Wheel.create ~config () in
  let prng = Prng.create ~seed in
  let now = ref 0 in
  for _ = 1 to 8_192 do
    ignore (Wheel.add wheel ~key:(timer_delay prng) ())
  done;
  Test.make ~name
    (Staged.stage (fun () ->
         match Wheel.pop wheel with
         | Some (key, ()) ->
             now := key;
             ignore (Wheel.add wheel ~key:(!now + timer_delay prng) ())
         | None -> ()))

(* RTO churn. A TCP sender re-arms its retransmit timer on every ACK,
   so almost no timer ever fires. The wheel cancels in O(1) and
   compacts lazily; the pre-wheel generation-counter idiom left every
   superseded timer in the heap as a zombie to pop and discard at its
   original deadline. *)
let rto = 200_000 (* 200us *)
let ack_gap = 2_000 (* one ACK every 2us: ~100 zombies resident *)

let churn_wheel =
  let wheel = Wheel.create () in
  let now = ref 0 in
  let handle = ref (Wheel.add wheel ~key:rto ()) in
  Test.make ~name:"rto churn cancel+rearm (wheel)"
    (Staged.stage (fun () ->
         ignore (Wheel.cancel wheel !handle);
         now := !now + ack_gap;
         handle := Wheel.add wheel ~key:(!now + rto) ()))

let churn_heap_zombies =
  let heap = Heap.create () in
  let now = ref 0 in
  let generation = ref 0 in
  Test.make ~name:"rto churn zombie discard (heap baseline)"
    (Staged.stage (fun () ->
         now := !now + ack_gap;
         incr generation;
         Heap.add heap ~key:(!now + rto) !generation;
         (* Expired zombies fire and are discarded by the generation
            check — the cost the cancellable timer removes. *)
         let rec drain () =
           match Heap.peek heap with
           | Some (key, _) when key <= !now ->
               (match Heap.pop heap with
               | Some (_, gen) -> if gen = !generation then ()
               | None -> ());
               drain ()
           | _ -> ()
         in
         drain ()))

(* End-to-end: a live engine with 100 periodic timers (the shape of a
   testbed's pollers, samplers, and flush clocks), advanced 100us per
   iteration — wheel vs the pre-wheel heap-only scheduler. *)
let engine_timers ~name config =
  let engine = Engine.create ~label:("bench-" ^ name) ~queue:config () in
  let prng = Prng.create ~seed:5 in
  for _ = 1 to 100 do
    let period = 1_000 + Prng.int prng 100_000 in
    ignore (Engine.periodic engine ~period (fun () -> ()))
  done;
  let horizon = ref 0 in
  Test.make ~name:(Printf.sprintf "engine 100-timer run (%s)" name)
    (Staged.stage (fun () ->
         horizon := !horizon + 100_000;
         Engine.run ~until:!horizon engine))

let test_switch_forward =
  let engine = Engine.create () in
  let sw =
    Switch.create engine ~name:"bench" ~ports:4
      ~config:Switch.default_config ()
  in
  for port = 0 to 3 do
    Switch.connect sw ~port ~rate:(Rate.gbps 10.0) ~prop_delay:300
      ~deliver:(fun _ -> ())
      ()
  done;
  Switch.add_route sw (Mac.host 2) 1;
  Switch.set_mirror sw ~monitor:3 ~mirrored:[ 0; 1; 2 ];
  Test.make ~name:"switch ingress+forward+mirror (amortized)"
    (Staged.stage (fun () ->
         Switch.ingress sw ~port:0 sample_packet;
         (* Drain so queues do not grow unboundedly. *)
         Engine.run engine))

(* Telemetry overhead guard (ISSUE acceptance: the disabled hot path
   must be a single predictable branch, so instrumenting the simulator
   costs <5% when --metrics-out is absent). Compare the disabled
   counter/histogram updates against the enabled ones. *)
let test_telemetry_disabled =
  let reg = Metrics.create ~enabled:false () in
  let c = Metrics.counter ~registry:reg ~subsystem:"bench" ~name:"noop" () in
  let h =
    Metrics.histogram ~registry:reg ~subsystem:"bench" ~name:"noop_h" ()
  in
  let tick = ref 0 in
  Test.make ~name:"telemetry disabled counter+histogram (no-op)"
    (Staged.stage (fun () ->
         incr tick;
         Metrics.Counter.incr c;
         Metrics.Histogram.observe h !tick))

let test_telemetry_enabled =
  let reg = Metrics.create ~enabled:true () in
  let c = Metrics.counter ~registry:reg ~subsystem:"bench" ~name:"hot" () in
  let h =
    Metrics.histogram ~registry:reg ~subsystem:"bench" ~name:"hot_h" ()
  in
  let tick = ref 0 in
  Test.make ~name:"telemetry enabled counter+histogram"
    (Staged.stage (fun () ->
         incr tick;
         Metrics.Counter.incr c;
         Metrics.Histogram.observe h !tick))

(* Same guard as the journal's instrumentation sites: the event body is
   only allocated behind [Journal.enabled], so a disabled journal costs
   one branch per potential event. *)
let test_journal_disabled =
  let j = Journal.create ~enabled:false () in
  let tick = ref 0 in
  Test.make ~name:"journal disabled (guarded record, no-op)"
    (Staged.stage (fun () ->
         incr tick;
         if Journal.enabled j then
           Journal.record j ~ts:!tick
             (Journal.Packet_drop
                { switch = "bench"; port = 0; mirror = false })))

let test_journal_enabled =
  let j = Journal.create ~enabled:true ~capacity:4096 () in
  let tick = ref 0 in
  Test.make ~name:"journal enabled (record into ring)"
    (Staged.stage (fun () ->
         incr tick;
         if Journal.enabled j then
           Journal.record j ~ts:!tick
             (Journal.Packet_drop
                { switch = "bench"; port = 0; mirror = false })))

(* ---- sketch tier vs exact flow table (bounded-state collector) ----

   The same 64k-key stream through the count-min sketch, the tiered
   sample path (tick + lookup miss + conservative update), and the
   exact table's touch — the per-sample costs the ISSUE's 2x bound is
   about. *)

let sketch_keys =
  Array.init 65_536 (fun i ->
      {
        FK.src_ip = Ip.of_int (0x0a00_0000 lor i);
        dst_ip = Ip.of_int (0x0b00_0000 lor (i lsr 4));
        src_port = 1_024 + (i land 0x3FFF);
        dst_port = 80;
        protocol = 6;
      })

let next_key =
  let i = ref 0 in
  fun () ->
    i := (!i + 1) land 0xFFFF;
    Array.unsafe_get sketch_keys !i

let test_cms_update =
  let cms = Count_min.create () in
  Test.make ~name:"cms conservative update (sketch tier)"
    (Staged.stage (fun () -> ignore (Count_min.update cms (next_key ()) 1460)))

let test_cms_query =
  let cms = Count_min.create () in
  Array.iter (fun key -> ignore (Count_min.update cms key 1460)) sketch_keys;
  Test.make ~name:"cms query"
    (Staged.stage (fun () -> ignore (Count_min.query cms (next_key ()))))

let test_tiered_sample =
  (* An unreachable promotion threshold keeps every key on the
     sketch-only path: tick + exact-tier miss + conservative update,
     the cost mice pay per sample. *)
  let config = { Tiered.default_config with Tiered.promote_bytes = max_int } in
  let tiered = Tiered.create ~config ~switch:0 ~flow_timeout:(Time_u.s 10) () in
  let now = ref 0 in
  Test.make ~name:"tiered sample (mouse, sketch-only path)"
    (Staged.stage (fun () ->
         now := !now + 1_000;
         Tiered.tick tiered ~now:!now;
         ignore
           (Tiered.sample tiered ~key:(next_key ()) ~now:!now ~bytes:1460
              ~max_rate:(Rate.gbps 10.0) ~dst_mac:(Mac.host 1))))

let test_flow_table_touch =
  let table = Flow_table.create ~timeout:(Time_u.s 3600) () in
  let mac = Mac.host 1 in
  let now = ref 0 in
  Test.make ~name:"flow table touch (exact baseline)"
    (Staged.stage (fun () ->
         now := !now + 1_000;
         ignore
           (Flow_table.touch table ~key:(next_key ()) ~time:!now ~dst_mac:mac
              ())))

(* Profiler overhead guards (the gate's <3% switch-micro bound rides on
   the disabled path being a single branch; the enabled path pays two
   clock reads and two [Gc.quick_stat]s). The enabled stage flips the
   process-wide flag around each visit so every other micro in this
   file always measures the disabled path. *)
let profile_reg = Metrics.create ~enabled:true ()
let profile_span_cold = Profile.register ~registry:profile_reg "bench.cold"
let profile_span_hot = Profile.register ~registry:profile_reg "bench.hot"

let test_profile_disabled =
  Test.make ~name:"profile span enter+exit (disabled)"
    (Staged.stage (fun () ->
         Profile.enter profile_span_cold;
         Profile.exit profile_span_cold))

let test_profile_enabled =
  Test.make ~name:"profile span enter+exit (enabled)"
    (Staged.stage (fun () ->
         Profile.set_enabled true;
         Profile.enter profile_span_hot;
         Profile.exit profile_span_hot;
         Profile.set_enabled false))

(* ---- sharded-engine speedup (wall clock, not Bechamel) ----

   One k = 16 fat-tree stride workload under static routing, run on
   the classic single-domain engine and again on 4 shard domains
   (pod-partitioned, conservative lookahead = the 5 us core delay).
   The row value is the dimensionless wall-clock ratio single/sharded,
   so > 1.0 is a parallel win. It lives outside Bechamel because one
   "iteration" is a whole experiment.

   On a single-core runner the shard domains time-slice instead of
   overlapping and the barriers are pure overhead, so the honest
   expectation there is <= 1.0; CI therefore gates this row with a
   wide tolerance override rather than the default band. *)
let shard_speedup_row () =
  let wall shards =
    let spec =
      {
        Planck.Testbed.default_spec with
        Planck.Testbed.topology = Planck.Testbed.Fat_tree { k = 16 };
        alts = Some 1;
        shards;
        core_prop_delay =
          Some Planck_topology.Fat_tree.default_core_prop_delay;
      }
    in
    let t0 = Unix.gettimeofday () in
    let s =
      Planck.Experiment.run ~spec ~scheme:Planck.Scheme.Static
        ~workload:(Planck.Experiment.Stride 8) ~size:(64 * 1024)
        ~horizon:(Time_u.s 30) ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    if not s.Planck.Experiment.all_completed then
      Printf.printf "  [shard-speedup-k16: %s arm left incomplete flows]\n%!"
        (match shards with None -> "single-domain" | Some n ->
          string_of_int n ^ "-shard");
    wall
  in
  let single = wall None in
  let sharded = wall (Some 4) in
  let speedup = single /. sharded in
  Printf.printf "  %-55s %10.2fx (single %.1fs / 4-shard %.1fs)\n%!"
    "sharded engine speedup (k=16, 4 domains)" speedup single sharded;
  {
    Bench_gate.id = "shard-speedup-k16";
    name = "sharded engine speedup (k=16 fat-tree, 4 domains, wall ratio)";
    ns_per_op = Some speedup;
  }

(* Custom rows: measured by their own harness, joined into the same
   gate row list as the Bechamel micros. *)
let custom_rows : (string * (unit -> Bench_gate.row)) list =
  [ ("shard-speedup-k16", shard_speedup_row) ]

(* Each micro carries a stable kebab-case id — the join key the
   bench-gate (--check/--trend) matches rows on across BENCH_*.json
   generations. Display names stay human-oriented and may change;
   ids must not. *)
let benchmarks =
  [
    ("packet-serialize", test_serialize);
    ("packet-parse", test_parse);
    ("rate-estimator-update", test_estimator);
    ("event-heap-add-pop", test_heap);
    ("event-queue-transient-heap", queue_transient_heap);
    ( "event-queue-transient-wheel",
      queue_transient_wheel ~name:"event-queue transient add+pop (wheel)"
        Wheel.default_config 3 );
    ( "event-queue-transient-wheel-heap-only",
      queue_transient_wheel
        ~name:"event-queue transient add+pop (wheel heap-only)" Wheel.heap_only
        3 );
    ("event-queue-8k-heap", queue_steady_heap);
    ( "event-queue-8k-wheel",
      queue_steady_wheel ~name:"event-queue 8k-pending add+pop (wheel)"
        Wheel.default_config 4 );
    ( "event-queue-8k-wheel-heap-only",
      queue_steady_wheel
        ~name:"event-queue 8k-pending add+pop (wheel heap-only)" Wheel.heap_only
        4 );
    ("rto-churn-wheel", churn_wheel);
    ("rto-churn-heap-zombies", churn_heap_zombies);
    ("engine-100-timer-wheel", engine_timers ~name:"wheel" Wheel.default_config);
    ( "engine-100-timer-heap-only",
      engine_timers ~name:"heap-only" Wheel.heap_only );
    ("switch-forward-mirror", test_switch_forward);
    ("cms-update", test_cms_update);
    ("cms-query", test_cms_query);
    ("tiered-sample-mouse", test_tiered_sample);
    ("flow-table-touch", test_flow_table_touch);
    ("telemetry-disabled", test_telemetry_disabled);
    ("telemetry-enabled", test_telemetry_enabled);
    ("journal-disabled", test_journal_disabled);
    ("journal-enabled", test_journal_enabled);
    ("profile-span-disabled", test_profile_disabled);
    ("profile-span-enabled", test_profile_enabled);
  ]

(* Runs every benchmark and returns one gate row per declared micro —
   declared order, not hashtable order, and a row with [ns_per_op =
   None] when the OLS analyzer produces no estimate, so --check can
   tell "missing" from "regressed". *)
let run ?(only = []) () =
  Exp_common.section "Bechamel microbenchmarks (hot paths)";
  let selected, selected_custom =
    match only with
    | [] -> (benchmarks, custom_rows)
    | ids ->
        List.iter
          (fun id ->
            if
              (not (List.mem_assoc id benchmarks))
              && not (List.mem_assoc id custom_rows)
            then begin
              Printf.eprintf "no micro with id %s\n" id;
              exit 1
            end)
          ids;
        ( List.filter (fun (id, _) -> List.mem id ids) benchmarks,
          List.filter (fun (id, _) -> List.mem id ids) custom_rows )
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let run_one (id, test) =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let estimate_once () =
      let raw = Benchmark.all cfg instances test in
      let results = List.map (fun i -> Analyze.all ols i raw) instances in
      let results = Analyze.merge ols instances results in
      let elt_names = List.map Test.Elt.name (Test.elements test) in
      Hashtbl.fold
        (fun _measure by_name acc ->
          List.fold_left
            (fun acc elt ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match Hashtbl.find_opt by_name elt with
                  | Some result -> (
                      match Analyze.OLS.estimates result with
                      | Some [ est ] -> Some est
                      | _ -> None)
                  | None -> None))
            acc elt_names)
        results None
    in
    (* Contention noise is one-sided — a neighbour can only make a
       sample slower — so the minimum over a few independent
       measurement windows is far stabler than any single window.
       Baseline recordings and gate runs share this path, so the
       comparison stays like for like. *)
    let est =
      List.fold_left
        (fun acc () ->
          match (acc, estimate_once ()) with
          | None, e | e, None -> e
          | Some a, Some b -> Some (Float.min a b))
        None
        [ (); (); (); (); () ]
    in
    let name = Test.name test in
    (match est with
    | Some est -> Printf.printf "  %-55s %10.1f ns/op\n%!" name est
    | None -> Printf.printf "  %-55s (no estimate)\n%!" name);
    { Bench_gate.id; name; ns_per_op = est }
  in
  List.map run_one selected
  @ List.map (fun (_, measure) -> measure ()) selected_custom
