(** The Planck collector (paper §3.2, §4.2).

    One collector per monitored switch. It consumes the mirrored frame
    stream from the switch's monitor port through a netmap-style
    {!Planck_netsim.Sink}, parses the raw bytes, and maintains:

    - a flow table with per-flow throughput estimates
      ({!Rate_estimator});
    - input/output-port inference from the routing state the controller
      shares (routes are keyed by destination MAC, so the output port
      follows from the destination MAC alone and the input port from the
      source–destination pair — §4.2);
    - per-link utilization (the sum of the rates of flows crossing the
      link);
    - threshold-crossing congestion events annotated with the flows on
      the congested link (§3.3);
    - a vantage-point ring of recent samples, dumpable as pcap (§6.1).

    Queries ([link_utilization], [flows_on_port], [flow_rate]) answer
    from current state in microseconds of simulated time — this is the
    statistics fast path that replaces OpenFlow counter polling. *)

type sample = {
  rx : Planck_util.Time.t;  (** when the collector processed the frame *)
  arrival : Planck_util.Time.t;  (** when it arrived at the NIC *)
  packet : Planck_packet.Packet.t;
  key : Planck_packet.Flow_key.t option;
  payload : int;
  seq32 : int option;
  in_port : int;
  out_port : int;
}

type flow_event_kind = Flow_started | Flow_ended

type flow_event = {
  time : Planck_util.Time.t;
  flow : Planck_packet.Flow_key.t;
  kind : flow_event_kind;
}

type congestion = {
  time : Planck_util.Time.t;
  switch : int;
  port : int;
  utilization : Planck_util.Rate.t;
  capacity : Planck_util.Rate.t;
  flows :
    (Planck_packet.Flow_key.t * Planck_util.Rate.t * Planck_packet.Mac.t) list;
      (** annotation: flows on the link with their estimated rates and
          routing MACs *)
  corr : int;
      (** correlation id minted at detection; every downstream
          {!Planck_telemetry.Journal} event of this control loop
          (notify, decide, install, effective) carries it *)
}

(** The flow-state backend the sample path writes through (§3.2.2, and
    the bounded-state extension). [b_table] is the exact tier every
    query answers from. [b_sample] admits one data sample: it returns
    the entry to account the sample to, or [None] when the backend
    keeps the flow in approximate state only (a sketch tier that has
    not promoted it). [b_tick] runs before each sample for housekeeping
    (decay clocks, demotion sweeps) and must be cheap when idle. *)
type table_backend = {
  b_table : Flow_table.t;
  b_sample :
    key:Planck_packet.Flow_key.t ->
    now:Planck_util.Time.t ->
    bytes:int ->
    max_rate:Planck_util.Rate.t ->
    dst_mac:Planck_packet.Mac.t ->
    Flow_table.entry option;
  b_tick : now:Planck_util.Time.t -> unit;
}

(** How the collector keeps per-flow state. [Exact] is the paper's
    one-entry-per-sampled-5-tuple table. [Custom_backend] receives the
    monitored switch id and the configured flow timeout and builds the
    backend — a factory because one config is shared across every
    monitored switch ({!Planck_controller} creates many collectors from
    a single config) and each needs its own state. *)
type table_kind =
  | Exact
  | Custom_backend of
      (switch:int -> flow_timeout:Planck_util.Time.t -> table_backend)

type config = {
  min_gap : Planck_util.Time.t;  (** burst separator, 200 µs *)
  max_burst : Planck_util.Time.t;  (** forced estimate period, 700 µs *)
  flow_timeout : Planck_util.Time.t;
  event_cooldown : Planck_util.Time.t;
      (** minimum spacing of events per link *)
  vantage_capacity : int;  (** samples retained for pcap dumps *)
  ring_capacity : int;
  poll_interval : Planck_util.Time.t;  (** netmap batch timer *)
  table : table_kind;  (** flow-state backend; default [Exact] *)
}

val default_config : config

type t

val create :
  Planck_netsim.Engine.t ->
  switch:int ->
  routing:Planck_topology.Routing.t ->
  link_rate:Planck_util.Rate.t ->
  ?config:config ->
  unit ->
  t

val attach : t -> unit
(** Cable this collector to its switch's reserved monitor port and turn
    on mirroring of all data ports (via {!Planck_topology.Fabric}). *)

val switch_id : t -> int

(** {2 Queries} *)

val flow_rate :
  t -> Planck_packet.Flow_key.t -> Planck_util.Rate.t option

val link_utilization : t -> port:int -> Planck_util.Rate.t
(** Sum of current rate estimates of live flows leaving [port]. *)

val flows_on_port :
  t ->
  port:int ->
  (Planck_packet.Flow_key.t * Planck_util.Rate.t * Planck_packet.Mac.t) list

val samples_seen : t -> int
val data_samples : t -> int
val flows_tracked : t -> int
val parse_errors : t -> int

(** {2 Subscriptions} *)

val subscribe_congestion :
  t -> threshold:float -> (congestion -> unit) -> unit
(** [threshold] is a fraction of link capacity; the callback fires when
    a link's utilization estimate crosses it, rate-limited by
    [event_cooldown] per link. *)

val subscribe_flow_events : t -> (flow_event -> unit) -> unit
(** Flow lifecycle events: a sampled SYN raises [Flow_started], a FIN
    or RST raises [Flow_ended]. With the switch's preferential
    sampling enabled (§9.2) these bypass the sample backlog. *)

val flow_sampling_fraction :
  t -> Planck_packet.Flow_key.t -> float option
(** Effective sampling rate of a flow's vantage trace: sampled payload
    bytes over the sequence span covered. 1.0 means a complete capture
    (undersubscribed monitor port); under oversubscription it reports
    how much of the flow the trace holds — the completeness signal the
    paper's §6.1 asks for. *)

val flow_retransmission_fraction :
  t -> Planck_packet.Flow_key.t -> float option
(** Fraction of this flow's data samples whose sequence number went
    backwards — duplicate sequence numbers indicate retransmissions
    (the inference the paper sketches in §3.2.2). *)

val set_tap : t -> (sample -> unit) -> unit
(** Raw sample stream (for experiments and extensions). *)

val on_estimate :
  t ->
  (Planck_packet.Flow_key.t -> Planck_util.Rate.t -> Planck_util.Time.t -> unit) ->
  unit
(** Called on every new per-flow rate estimate. *)

(** {2 Vantage point (§6.1)} *)

val vantage_pcap : t -> string
(** The retained sample ring as a pcap file image. *)

val vantage_count : t -> int
