(** Self-profiling spans: wall-clock and GC cost attributed to named
    subsystems.

    A span is registered once (cold path) and entered/exited around a
    unit of runtime work — engine dispatch, the switch pipeline, the
    collector ring drain, a sketch update, a TE decision, journal I/O.
    While profiling is enabled, each exit records into the span's
    metrics (in the owning {!Metrics} registry, subsystem ["profile"],
    label = span name):

    - ["span_ns"] histogram — inclusive wall time per visit (log2
      buckets, so the export carries the latency distribution);
    - ["self_ns"] counter — exclusive time: inclusive minus the time
      spent inside nested child spans (flamegraph-style self time);
    - ["minor_words"] / ["promoted_words"] / ["major_words"] counters —
      exclusive GC-word deltas ({!Gc.quick_stat});
    - ["minor_collections"] / ["major_collections"] counters —
      exclusive collection counts.

    Costs of the measurement itself are controlled two ways: disabled,
    {!enter}/{!exit} are a single load+test of one flag (no allocation,
    no clock read — the same discipline as {!Metrics} updates); enabled,
    the profiler's own allocations (the [Gc.quick_stat] record) are
    metered against a private ledger and subtracted from every
    enclosing span's word counts, so "words/op" measures the profiled
    code, not the profiler.

    Spans nest on a fixed-depth preallocated frame stack (no allocation
    per visit). An {!exit} whose span is not the innermost open frame
    unwinds to the matching frame, discarding abandoned inner frames —
    so a span body that escapes by exception self-heals at the next
    well-paired exit. *)

type t
(** A registered span handle. *)

val register : ?registry:Metrics.registry -> string -> t
(** [register name] creates (or returns the existing) span [name],
    backed by metrics in [registry] (default {!Metrics.default}).
    Recording only happens while both {!enabled} and the owning
    registry's enabled flag are on. *)

val name : t -> string

val reset : unit -> unit
(** Drop every span registered against a non-default registry from the
    process-wide catalog. Toplevel handles (registered at module init
    into {!Metrics.default}) are kept — they cannot re-register.
    Bench and test setup call this so scoped-registry spans do not
    accumulate across runs. *)

val set_enabled : bool -> unit
(** Enables/disables all spans process-wide and resets the open-frame
    stack (any spans open at the flip are abandoned, recording
    nothing). *)

val enabled : unit -> bool

val enter : t -> unit
(** Opens a frame for [t]. One branch when disabled; silently drops the
    frame when the stack is at depth {!max_depth}. *)

val exit : t -> unit
(** Closes the innermost open frame for [t] and records its metrics.
    One branch when disabled; a no-op if no frame for [t] is open. *)

val with_span : t -> (unit -> 'a) -> 'a
(** [with_span t f] brackets [f ()] with {!enter}/{!exit}, exiting on
    exception too. Convenience for cold call sites and tests; hot sites
    call {!enter}/{!exit} directly to avoid the closure. *)

val max_depth : int
(** Frame-stack capacity (nesting deeper than this records nothing for
    the excess frames). *)

val set_clock : (unit -> int) option -> unit
(** Replace the wall-clock source (monotonic nanoseconds as [int]) —
    deterministic tests inject a fake clock; [None] restores the real
    one. *)

(** {2 Reporting} *)

type row = {
  r_name : string;
  r_calls : int;
  r_total_ns : int;  (** inclusive wall time, summed over visits *)
  r_self_ns : int;  (** exclusive wall time *)
  r_max_ns : int;  (** worst single visit, inclusive *)
  r_minor_words : int;
  r_promoted_words : int;
  r_major_words : int;
  r_minor_collections : int;
  r_major_collections : int;
}

val summary : ?registry:Metrics.registry -> unit -> row list
(** Live rows for every span registered against [registry], sorted by
    self time, largest first. *)

val rows_of_metrics_json : Json.t -> (row list, string) result
(** Rebuild rows from an exported metrics document — either the
    [{"metrics": [...]}] object {!Export.metrics_to_json} writes or the
    bare metrics list embedded in [bench --json] output. Entries
    outside subsystem ["profile"] are ignored; [Error] only if the
    document shape is not a metrics snapshot at all. *)

val render : row list -> string
(** Plain-text report: top spans by self time with share-of-total,
    per-call costs, allocation rates, and GC counts. *)
