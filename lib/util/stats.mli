(** Descriptive statistics for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); [0.] for fewer than two
    samples. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,100\]], linear interpolation between
    closest ranks. [nan] on the empty list. Raises [Invalid_argument] for
    [p] outside [\[0,100\]]. *)

val median : float list -> float

val cdf : float list -> (float * float) list
(** [cdf xs] is the empirical CDF as [(value, cumulative fraction)]
    points, sorted by value, suitable for printing a CDF series. *)

val mean_relative_error : truth:float list -> estimate:float list -> float
(** Mean of [|estimate - truth| / truth] over paired samples, skipping
    pairs whose truth is 0. Raises [Invalid_argument] on length
    mismatch. *)

val histogram : bins:int -> float list -> (float * int) array
(** [histogram ~bins xs] buckets [xs] into [bins] equal-width bins over
    the data range; each cell is [(bin lower edge, count)]. *)

module Online : sig
  (** Streaming mean/variance (Welford), used where retaining every
      sample would be wasteful. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end
