(** Comparator schemes: polling-based traffic engineering and the
    published measurement-latency figures of Table 1. *)

module Placement = Placement
module Poller = Poller
module Sflow_te = Sflow_te
module Latency_models = Latency_models
