module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Prng = Planck_util.Prng
module Engine = Planck_netsim.Engine
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ipv4_addr = Planck_packet.Ipv4_addr
module Routing = Planck_topology.Routing
module Fabric = Planck_topology.Fabric
module Control_channel = Planck_openflow.Control_channel
module Agent = Planck_sflow.Agent
module Estimator = Planck_sflow.Estimator
module Reroute = Planck_controller.Reroute

type config = {
  period : Time.t;
  window : Time.t;
  elephant_threshold : float;
  mechanism : Reroute.mechanism;
  agent : Agent.config;
}

let default_config =
  {
    period = Time.ms 100;
    window = Time.s 1;
    elephant_threshold = 0.1;
    mechanism = Reroute.Arp;
    agent = Agent.default_config;
  }

type t = {
  engine : Engine.t;
  routing : Routing.t;
  channel : Control_channel.t;
  link_rate : Rate.t;
  config : config;
  estimator : Estimator.t;
  (* Flows recently sampled, with the routing MAC last seen. *)
  seen : (Flow_key.t, Mac.t) Hashtbl.t;
  mutable samples : int;
  mutable rounds : int;
  mutable reroutes : int;
}

let is_edge fabric ~switch =
  List.exists
    (fun port ->
      match Fabric.peer fabric ~switch ~port with
      | Fabric.To_host _ -> true
      | Fabric.To_switch _ | Fabric.To_monitor | Fabric.Unwired -> false)
    (Fabric.data_ports fabric ~switch)

(* Count each flow at its source edge switch only. *)
let counts_at fabric ~switch (key : Flow_key.t) =
  match Ipv4_addr.host_id key.src_ip with
  | None -> false
  | Some src -> fst (Fabric.host_attachment fabric ~host:src) = switch

let control_round t =
  t.rounds <- t.rounds + 1;
  let now = Engine.now t.engine in
  (* Key-sorted fold: the elephant list's order is a tie-break in the
     greedy placement below, so hash order would leak into reroutes. *)
  let elephants =
    List.fold_left
      (fun acc (key, mac) ->
        let rate = Estimator.flow_rate t.estimator ~now key in
        if rate >= t.config.elephant_threshold *. t.link_rate then
          { Placement.key; rate; current_mac = mac } :: acc
        else acc)
      []
      (List.sort
         (fun (a, _) (b, _) -> Flow_key.compare a b)
         (List.of_seq (Hashtbl.to_seq t.seen)))
  in
  List.iter
    (fun (flow, mac) ->
      t.reroutes <- t.reroutes + 1;
      Hashtbl.replace t.seen flow.Placement.key mac;
      Reroute.apply t.config.mechanism ~channel:t.channel ~routing:t.routing
        ~key:flow.Placement.key ~new_mac:mac)
    (Placement.global_first_fit ~routing:t.routing ~link_rate:t.link_rate
       elephants)

let create engine ~routing ~channel ~link_rate ?(config = default_config)
    ~prng () =
  let fabric = Routing.fabric routing in
  let t =
    {
      engine;
      routing;
      channel;
      link_rate;
      config;
      estimator = Estimator.create ~window:config.window ();
      seen = Hashtbl.create 64;
      samples = 0;
      rounds = 0;
      reroutes = 0;
    }
  in
  for switch = 0 to Fabric.switch_count fabric - 1 do
    if is_edge fabric ~switch then
      ignore
        (Agent.attach engine (Fabric.switch fabric switch) ~config:config.agent
           ~prng:(Prng.split prng)
           ~collector:(fun sample ->
             t.samples <- t.samples + 1;
             Estimator.add t.estimator sample;
             match sample.Agent.key with
             | Some key when counts_at fabric ~switch key ->
                 if not (Hashtbl.mem t.seen key) then
                   Hashtbl.replace t.seen key sample.Agent.dst_mac
             | Some _ | None -> ())
           ())
  done;
  Engine.every engine ~period:config.period (fun () -> control_round t);
  t

let rounds t = t.rounds
let reroutes t = t.reroutes
let samples_received t = t.samples
