(* The rule catalog and the single-pass AST checker.

   Rules are syntactic: the linter sees the Parsetree, not types, so
   each rule is scoped (by path, by enclosing-function name, by what the
   module defines) to keep the signal high. Imprecision is resolved
   toward fewer false positives; the suppression syntax exists for the
   rest. *)

open Parsetree
module F = Lint_finding

type rule = {
  id : string;
  group : string;
  default_severity : F.severity;
  doc : string;
}

let catalog =
  [
    {
      id = "wall-clock";
      group = "determinism";
      default_severity = F.Error;
      doc =
        "No wall-clock reads (Unix.gettimeofday/Unix.time/Sys.time) in lib/ \
         sim code: same seed must give identical journals. Sim time comes \
         from Engine.now; wall time is legal in bin/, bench/ and the \
         lib/telemetry export paths.";
    };
    {
      id = "ambient-random";
      group = "determinism";
      default_severity = F.Error;
      doc =
        "No global Random state (Random.self_init, Random.int, ...) in lib/ \
         code. Draw from an explicitly seeded Planck_util.Prng stream so \
         runs are reproducible; Random.State with an explicit seed is \
         allowed.";
    };
    {
      id = "hashtbl-iteration";
      group = "determinism";
      default_severity = F.Error;
      doc =
        "Hashtbl.iter/fold order depends on hash-bucket layout and can leak \
         into event ordering. Iterate sorted bindings instead \
         (Hashtbl.to_seq + List.sort, or Flow_key.Table.iter_sorted / \
         fold_sorted). lib/telemetry export paths are exempt.";
    };
    {
      id = "poly-compare";
      group = "hotpath";
      default_severity = F.Error;
      doc =
        "Bare polymorphic compare / Hashtbl.hash walk structure at runtime \
         and order floats by bit pattern. Use Int.compare, Float.compare, \
         String.compare or the key module's explicit comparator/hash.";
    };
    {
      id = "keyed-poly-equal";
      group = "hotpath";
      default_severity = F.Error;
      doc =
        "Structural =/<> inside a module that defines a custom key type \
         (a record/variant plus equal/compare/hash). Write the field-wise \
         comparison so the representation stays under the module's control.";
    };
    {
      id = "float-equality";
      group = "hotpath";
      default_severity = F.Error;
      doc =
        "=/<> against a float literal is a polymorphic structural compare \
         and is usually a logic smell. Use Float.equal, an epsilon, or an \
         ordering test.";
    };
    {
      id = "hot-alloc";
      group = "hotpath";
      default_severity = F.Error;
      doc =
        "Printf/Format/string concatenation inside a per-packet/per-event \
         function (forward, enqueue, process, ...). Format off the hot path, \
         or guard behind an enabled-flag branch and suppress with a \
         justification.";
    };
    {
      id = "hot-schedule";
      group = "hotpath";
      default_severity = F.Error;
      doc =
        "A closure literal passed to Engine.schedule/schedule_at/every \
         inside a per-packet/per-event function allocates a fresh closure \
         per event and cannot be cancelled; preallocate an Engine.Timer.t \
         handle and reschedule it.";
    };
    {
      id = "missing-mli";
      group = "hygiene";
      default_severity = F.Error;
      doc =
        "Every lib/ module ships an .mli so the public surface is explicit \
         and the compiler can prune dead exports.";
    };
    {
      id = "open-lib";
      group = "hygiene";
      default_severity = F.Error;
      doc =
        "No structure-level open of a whole Planck library inside lib/ \
         implementation files. Alias (module T = Planck_util.Time) or \
         qualify; local opens in expressions are allowed.";
    };
    {
      id = "ignored-result";
      group = "hygiene";
      default_severity = F.Error;
      doc =
        "ignore on a result-returning call silently drops the Error case; \
         match on it or fail loudly.";
    };
    {
      id = "parse-error";
      group = "hygiene";
      default_severity = F.Error;
      doc = "The file does not parse; all other rules are moot until it does.";
    };
    {
      id = "determinism-taint";
      group = "determinism";
      default_severity = F.Error;
      doc =
        "Deep tier only: a wall-clock / ambient-random / \
         hashtbl-iteration-order value flows (interprocedurally, along \
         the call graph) into sim-visible state — journal or time-series \
         payloads, engine scheduling, or a routing/TE decision. The \
         finding cites the witness chain; derive the value from \
         Engine.now or a seeded Planck_util.Prng instead.";
    };
    {
      id = "shared-mutable-global";
      group = "domain";
      default_severity = F.Error;
      doc =
        "Deep tier only: a toplevel lib/ binding holds mutable state that \
         is neither engine-scoped (reachable only through a handle) nor \
         wrapped in Stdlib.Atomic — it will race the moment two shards run \
         on separate domains. Confine it, convert it, or baseline it with \
         a justification.";
    };
    {
      id = "shard-unsafe-reach";
      group = "domain";
      default_severity = F.Error;
      doc =
        "Deep tier only: shared-mutable state transitively reachable from \
         the per-packet/per-event hot roots — exactly the code that will \
         run concurrently on every shard. The finding cites the witness \
         chain from the hot root to the state.";
    };
    {
      id = "nonatomic-counter";
      group = "domain";
      default_severity = F.Error;
      doc =
        "Deep tier only: a read-modify-write (incr/decr, or := fed by ! / \
         a mutable-field update) on shared-mutable state; a concurrent \
         shard can interleave between the read and the write. Use \
         Atomic.fetch_and_add or a compare_and_set loop.";
    };
    {
      id = "dead-export";
      group = "hygiene";
      default_severity = F.Error;
      doc =
        "Deep tier only: a value exported by a lib/ .mli is never \
         referenced outside its own module. Delete the export (and the \
         binding, if nothing else uses it) or baseline it with a \
         one-line justification.";
    };
    {
      id = "use-after-transfer";
      group = "ownership";
      default_severity = F.Error;
      doc =
        "Deep tier only: a mutable local is read, written or RMW'd after \
         it flowed into a transfer point (Spsc.push hands the frame to \
         the consumer shard, Engine.Timer.cancel kills the handle) on \
         some path through the same binding. The new owner may be \
         mutating it concurrently; copy what you need before the \
         hand-off. Immutable payloads are exempt.";
    };
    {
      id = "spsc-role-confinement";
      group = "ownership";
      default_severity = F.Error;
      doc =
        "Deep tier only: one SPSC channel's push call sites (or its \
         pop/peek/drain sites) are reachable from more than one \
         Domain.spawn shard root. The queue is single-producer/ \
         single-consumer by construction; a second domain on either \
         role loses frames. The complementary dynamic check is \
         Planck_util.Spsc.set_debug.";
    };
    {
      id = "blocking-in-shard-body";
      group = "ownership";
      default_severity = F.Error;
      doc =
        "Deep tier only: a call that can park the running domain \
         (Mutex.lock, Condition.wait, Domain.join, Unix I/O, console \
         formatters) is transitively reachable from a shard closure or \
         hot root. A parked shard stalls the sense-reversing barrier \
         for every shard; move it off the shard path or baseline the \
         documented design points.";
    };
    {
      id = "release-leak";
      group = "ownership";
      default_severity = F.Error;
      doc =
        "Deep tier only: Buffer_pool.try_alloc succeeded but a direct \
         raise-family call escapes the success branch before any \
         Buffer_pool.release. The admitted bytes leak from the pool \
         accounting; release on the exception edge and re-raise.";
    };
  ]

(* Syntactic rules the deep tier replaces: when a file is covered by
   the cmt index, these are switched off for that file (reachability
   and instantiated types subsume the filename/shadow heuristics); any
   file without a cmt keeps the full syntactic tier as the fallback. *)
let deep_replaced =
  [
    "poly-compare"; "float-equality"; "hot-alloc"; "hot-schedule";
    "wall-clock"; "ambient-random"; "hashtbl-iteration";
  ]

let find id = List.find_opt (fun r -> r.id = id) catalog
let is_known id = Option.is_some (find id) || id = "all"

(* ---- Path scoping ---- *)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let in_lib path = has_prefix "lib/" path
let in_telemetry path = has_prefix "lib/telemetry/" path

(* Files whose functions run per packet / per sample / per event. *)
let hot_dirs = [ "lib/netsim/"; "lib/collector/"; "lib/tcp/"; "lib/sflow/"; "lib/packet/" ]
let hot_file path = List.exists (fun d -> has_prefix d path) hot_dirs

(* Per-packet/per-event naming conventions of switch.ml, engine.ml,
   flow.ml, collector.ml and friends. A function is hot when any
   enclosing binding matches one of these stems. *)
let hot_stems =
  [
    "forward"; "enqueue"; "dequeue"; "ingress"; "inject"; "deliver";
    "transmit"; "process"; "parse"; "push"; "pop"; "step"; "tick";
    "observe"; "sample"; "record"; "touch"; "note"; "update"; "drop";
    "handle"; "check"; "infer"; "on";
  ]

let is_hot_name name =
  List.exists
    (fun stem ->
      name = stem
      || has_prefix (stem ^ "_") name)
    hot_stems

(* ---- Longident helpers ---- *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten_lid p @ [ s ]
  | Longident.Lapply (a, b) -> flatten_lid a @ flatten_lid b

let lid_to_string lid = String.concat "." (flatten_lid lid)

(* ---- Checker context ---- *)

type ctx = {
  path : string;
  c_in_lib : bool;
  c_in_telemetry : bool;
  c_hot_file : bool;
  c_keyed : bool;
  mutable fn_stack : string list;
  (* structure/let-bound value names seen so far, with nesting counts,
     so a module-local [compare] is not mistaken for Stdlib.compare *)
  bound : (string, int) Hashtbl.t;
  mutable findings : F.t list;
}

let bind ctx name =
  Hashtbl.replace ctx.bound name
    (1 + Option.value (Hashtbl.find_opt ctx.bound name) ~default:0)

let unbind ctx name =
  match Hashtbl.find_opt ctx.bound name with
  | Some n when n > 1 -> Hashtbl.replace ctx.bound name (n - 1)
  | Some _ -> Hashtbl.remove ctx.bound name
  | None -> ()

let is_bound ctx name = Hashtbl.mem ctx.bound name

let report ctx ~loc ~rule message =
  let severity =
    match find rule with Some r -> r.default_severity | None -> F.Error
  in
  let pos = loc.Location.loc_start in
  ctx.findings <-
    {
      F.rule;
      severity;
      file = ctx.path;
      line = pos.Lexing.pos_lnum;
      col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      message;
      symbol = "";
      classification = "";
    }
    :: ctx.findings

let in_hot_fn ctx = List.exists is_hot_name ctx.fn_stack

(* ---- Pattern helpers ---- *)

let rec pat_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pat_name p
  | _ -> None

(* Does the structure define a custom key type: a record/variant type
   together with a top-level equal/compare/hash binding? *)
let defines_keyed_type str =
  let structured = ref false and keyfun = ref false in
  let rec item si =
    match si.pstr_desc with
    | Pstr_type (_, tds) ->
        List.iter
          (fun td ->
            match td.ptype_kind with
            | Ptype_record _ | Ptype_variant _ -> structured := true
            | Ptype_abstract | Ptype_open -> ())
          tds
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match pat_name vb.pvb_pat with
            | Some ("equal" | "compare" | "hash") -> keyfun := true
            | _ -> ())
          vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item str;
  !structured && !keyfun

(* ---- Per-expression checks ---- *)

let wall_clock_idents =
  [
    [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Unix"; "gmtime" ];
    [ "Unix"; "localtime" ]; [ "Unix"; "mktime" ]; [ "Sys"; "time" ];
  ]

let check_ident ctx loc lid =
  let path = flatten_lid lid in
  let sim_code = ctx.c_in_lib && not ctx.c_in_telemetry in
  (* determinism: wall clock *)
  if sim_code && List.mem path wall_clock_idents then
    report ctx ~loc ~rule:"wall-clock"
      (Printf.sprintf
         "%s reads the wall clock; sim code must use Engine.now (wall time \
          is only legal in bin/, bench/ and lib/telemetry exports)"
         (lid_to_string lid));
  (* determinism: ambient randomness *)
  (match path with
  | "Random" :: rest when sim_code -> (
      match rest with
      | [ "State"; "make_self_init" ] | [ "self_init" ] ->
          report ctx ~loc ~rule:"ambient-random"
            (Printf.sprintf
               "%s seeds from the environment; use Planck_util.Prng.create \
                ~seed so runs are reproducible"
               (lid_to_string lid))
      | "State" :: _ -> () (* explicit, seedable state *)
      | _ ->
          report ctx ~loc ~rule:"ambient-random"
            (Printf.sprintf
               "%s draws from the global Random state; use an explicitly \
                seeded Planck_util.Prng stream"
               (lid_to_string lid)))
  | _ -> ());
  (* determinism: unordered hashtable iteration *)
  (let is_tbl_iteration =
     match List.rev path with
     | ("iter" | "fold") :: rest -> (
         match rest with
         | [ "Hashtbl" ] | [ "Hashtbl"; "Stdlib" ] -> true
         | "Table" :: _ -> true (* Hashtbl.Make instances, e.g. Flow_key.Table *)
         | _ -> false)
     | _ -> false
   in
   if sim_code && is_tbl_iteration then
     report ctx ~loc ~rule:"hashtbl-iteration"
       (Printf.sprintf
          "%s visits bindings in hash order, which can leak into event \
           ordering; iterate sorted bindings (to_seq + List.sort, or \
           Flow_key.Table.iter_sorted/fold_sorted)"
          (lid_to_string lid)));
  (* hotpath: polymorphic compare / hash *)
  (match path with
  | [ "compare" ] when ctx.c_in_lib && not (is_bound ctx "compare") ->
      report ctx ~loc ~rule:"poly-compare"
        "bare polymorphic compare; use Int.compare / Float.compare / \
         String.compare or the key module's comparator"
  | [ "Stdlib"; "compare" ] when ctx.c_in_lib ->
      report ctx ~loc ~rule:"poly-compare"
        "Stdlib.compare is polymorphic; use a monomorphic comparator"
  | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] when ctx.c_in_lib ->
      report ctx ~loc ~rule:"poly-compare"
        "Hashtbl.hash walks the value structurally; define an explicit hash \
         for the key type"
  | _ -> ());
  (* hotpath: allocation-heavy formatting in per-packet functions *)
  if ctx.c_hot_file && in_hot_fn ctx then
    let alloc_smell =
      match path with
      | [ "^" ] | [ "String"; "concat" ] -> true
      | [ ("string_of_int" | "string_of_float" | "string_of_bool") ] -> true
      | ("Printf" | "Format") :: _ -> true
      | _ -> false
    in
    if alloc_smell then
      report ctx ~loc ~rule:"hot-alloc"
        (Printf.sprintf
           "%s allocates/formats inside a per-packet/per-event function \
            (enclosing: %s); move it off the hot path or guard it and \
            suppress with a justification"
           (lid_to_string lid)
           (String.concat " > " (List.rev ctx.fn_stack)))

let rec strip_unary_minus e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "~-" | "-." | "-"); _ }; _ },
        [ (Asttypes.Nolabel, arg) ] ) ->
      strip_unary_minus arg
  | _ -> e

let is_float_literal e =
  match (strip_unary_minus e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* Operands that make structural =/<> acceptable in a keyed module:
   literals, constructors (None, [], flags) and qualified constants. *)
let is_constantish e =
  match e.pexp_desc with
  | Pexp_constant _ | Pexp_construct _ | Pexp_variant _ -> true
  | Pexp_ident { txt = Longident.Ldot _; _ } -> true
  | _ -> false

let result_returning_call e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten_lid txt with
      | "Result" :: _ :: _ -> true
      | path -> (
          match List.rev path with
          | last :: _ ->
              let n = String.length last in
              (n > 7 && String.sub last (n - 7) 7 = "_result")
              || List.mem last [ "of_ndjson"; "of_csv"; "of_json" ]
              || List.mem path [ [ "Json"; "parse" ] ]
          | [] -> false))
  | _ -> false

(* hotpath: fresh closures handed to the engine in per-packet code *)
let check_hot_schedule ctx whole fn args =
  if ctx.c_hot_file && in_hot_fn ctx then
    match fn.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match List.rev (flatten_lid txt) with
        | ("schedule" | "schedule_at" | "every") :: "Engine" :: _ ->
            let closure_literal ((_ : Asttypes.arg_label), a) =
              match a.pexp_desc with
              | Pexp_fun _ | Pexp_function _ -> true
              | _ -> false
            in
            if List.exists closure_literal args then
              report ctx ~loc:whole.pexp_loc ~rule:"hot-schedule"
                (Printf.sprintf
                   "fresh closure scheduled on the engine inside a \
                    per-packet/per-event function (enclosing: %s); \
                    preallocate an Engine.Timer.t and reschedule it"
                   (String.concat " > " (List.rev ctx.fn_stack)))
        | _ -> ())
    | _ -> ()

let check_apply ctx whole fn args =
  check_hot_schedule ctx whole fn args;
  match (fn.pexp_desc, args) with
  | ( Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ },
      [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] ) ->
      if is_float_literal a || is_float_literal b then
        report ctx ~loc:whole.pexp_loc ~rule:"float-equality"
          (Printf.sprintf
             "(%s) against a float literal; use Float.equal, an epsilon, or \
              an ordering test"
             op)
      else if
        ctx.c_keyed && ctx.c_in_lib && (op = "=" || op = "<>")
        && (not (is_constantish a))
        && not (is_constantish b)
      then
        report ctx ~loc:whole.pexp_loc ~rule:"keyed-poly-equal"
          (Printf.sprintf
             "structural (%s) in a module defining a custom key type; write \
              the field-wise comparison"
             op)
  | ( Pexp_ident { txt = Longident.Lident "ignore"; _ },
      [ (Asttypes.Nolabel, arg) ] )
    when ctx.c_in_lib && result_returning_call arg ->
      report ctx ~loc:whole.pexp_loc ~rule:"ignored-result"
        "ignore of a result-returning call drops the Error case; match on it"
  | _ -> ()

(* ---- The iterator ---- *)

let check_structure ~path str =
  let ctx =
    {
      path;
      c_in_lib = in_lib path;
      c_in_telemetry = in_telemetry path;
      c_hot_file = hot_file path;
      c_keyed = in_lib path && defines_keyed_type str;
      fn_stack = [];
      bound = Hashtbl.create 16;
      findings = [];
    }
  in
  let default = Ast_iterator.default_iterator in
  let vb_names vbs = List.filter_map (fun vb -> pat_name vb.pvb_pat) vbs in
  let iter =
    {
      default with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident ctx loc txt
          | Pexp_apply (fn, args) -> check_apply ctx e fn args
          | _ -> ());
          match e.pexp_desc with
          | Pexp_let (rf, vbs, body) ->
              (* thread bindings so local [let compare = ...] shadows *)
              let names = vb_names vbs in
              if rf = Asttypes.Recursive then List.iter (bind ctx) names;
              List.iter (it.value_binding it) vbs;
              if rf = Asttypes.Nonrecursive then List.iter (bind ctx) names;
              it.expr it body;
              List.iter (unbind ctx) names
          | _ -> default.expr it e);
      value_binding =
        (fun it vb ->
          match pat_name vb.pvb_pat with
          | Some name ->
              ctx.fn_stack <- name :: ctx.fn_stack;
              default.value_binding it vb;
              ctx.fn_stack <- List.tl ctx.fn_stack
          | None -> default.value_binding it vb);
      structure_item =
        (fun it si ->
          match si.pstr_desc with
          | Pstr_value (rf, vbs) ->
              (* structure-level names stay bound for the rest of the file *)
              let names = vb_names vbs in
              if rf = Asttypes.Recursive then List.iter (bind ctx) names;
              List.iter (it.value_binding it) vbs;
              if rf = Asttypes.Nonrecursive then List.iter (bind ctx) names
          | Pstr_open
              { popen_expr = { pmod_desc = Pmod_ident { txt; loc }; _ }; _ }
            when ctx.c_in_lib -> (
              (match flatten_lid txt with
              | [ m ] when has_prefix "Planck" m ->
                  report ctx ~loc ~rule:"open-lib"
                    (Printf.sprintf
                       "structure-level open of the whole %s library; alias \
                        the submodules you need or qualify"
                       m)
              | _ -> ());
              default.structure_item it si)
          | _ -> default.structure_item it si);
    }
  in
  iter.structure iter str;
  List.rev ctx.findings

(* ---- File-level rule ---- *)

let missing_mli ~path ~has_mli =
  if in_lib path && Filename.check_suffix path ".ml" && not has_mli then
    [
      {
        F.rule = "missing-mli";
        severity = F.Error;
        file = path;
        line = 1;
        col = 0;
        message =
          Printf.sprintf "%s has no interface; add %si so the public \
                          surface is explicit"
            (Filename.basename path) (Filename.basename path);
        symbol = "";
        classification = "";
      };
    ]
  else []
