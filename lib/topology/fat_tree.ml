type shape = {
  k : int;
  pods : int;
  cores : int;
  aggs_per_pod : int;
  edges_per_pod : int;
  hosts_per_edge : int;
  num_switches : int;
  num_hosts : int;
}

let shape ~k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Fat_tree.shape: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  {
    k;
    pods = k;
    cores;
    aggs_per_pod = half;
    edges_per_pod = half;
    hosts_per_edge = half;
    num_switches = cores + (k * half * 2);
    num_hosts = k * half * half;
  }

let core_id _ c = c
let agg_id s ~pod i = s.cores + (pod * s.aggs_per_pod) + i

let edge_id s ~pod j =
  s.cores + (s.pods * s.aggs_per_pod) + (pod * s.edges_per_pod) + j

let host_of s ~pod ~edge ~slot =
  (pod * s.edges_per_pod * s.hosts_per_edge) + (edge * s.hosts_per_edge) + slot

let pod_of_host s h = h / (s.edges_per_pod * s.hosts_per_edge)

let edge_of_host s h =
  h mod (s.edges_per_pod * s.hosts_per_edge) / s.hosts_per_edge

let slot_of_host s h = h mod s.hosts_per_edge

(* Port conventions (all switches have k data ports + 1 monitor port):
   - edge(p,j):  ports 0..k/2-1 down to hosts, port k/2+i up to agg i
   - agg(p,i):   ports 0..k/2-1 down to edge j, port k/2+m up to core
                 i*(k/2)+m
   - core(c):    port p down to pod p (agg index c/(k/2))
   - monitor:    port k everywhere *)

(* Agg-core links model the longer cable runs up to the core tier — and
   under sharding they are the only shard-crossing links (pod-granular
   partition), so their delay is the lookahead bound. 5 µs is ~1 km of
   fibre, a plausible core run and a workable synchronization window. *)
let default_core_prop_delay = Planck_util.Time.us 5

let build engine ~k ~switch_config ~link_rate ?host_stack ?sharding
    ?core_prop_delay ~prng () =
  let s = shape ~k in
  let half = k / 2 in
  let fabric =
    Fabric.build engine ~switch_ports:(k + 1) ~switch_config ~link_rate
      ?host_stack ?sharding ~num_switches:s.num_switches
      ~num_hosts:s.num_hosts ~prng ()
  in
  for pod = 0 to s.pods - 1 do
    for j = 0 to s.edges_per_pod - 1 do
      let edge = edge_id s ~pod j in
      (* Hosts below the edge switch. *)
      for slot = 0 to s.hosts_per_edge - 1 do
        Fabric.wire_host fabric
          ~host:(host_of s ~pod ~edge:j ~slot)
          ~switch:edge ~port:slot
      done;
      (* Uplinks edge -> aggregation. *)
      for i = 0 to s.aggs_per_pod - 1 do
        Fabric.wire_switches fabric ~a:edge ~port_a:(half + i)
          ~b:(agg_id s ~pod i) ~port_b:j
      done
    done;
    (* Uplinks aggregation -> core. *)
    for i = 0 to s.aggs_per_pod - 1 do
      for m = 0 to half - 1 do
        let core = (i * half) + m in
        Fabric.wire_switches ?prop_delay:core_prop_delay fabric
          ~a:(agg_id s ~pod i) ~port_a:(half + m) ~b:(core_id s core)
          ~port_b:pod
      done
    done
  done;
  for sw = 0 to s.num_switches - 1 do
    Fabric.reserve_monitor fabric ~switch:sw ~port:k
  done;
  (fabric, s)

let max_alts s = s.cores
let core_for s ~dst ~alt = (dst + alt) mod s.cores

let tree_out_ports s ~dst ~core =
  let half = s.k / 2 in
  let i_c = core / half (* aggregation index the core attaches to *)
  and m_c = core mod half in
  let p_d = pod_of_host s dst
  and j_d = edge_of_host s dst
  and s_d = slot_of_host s dst in
  let out = Array.make s.num_switches (-1) in
  (* Core: straight down to the destination pod. *)
  out.(core_id s core) <- p_d;
  for pod = 0 to s.pods - 1 do
    let agg = agg_id s ~pod i_c in
    if pod = p_d then
      (* Destination pod: aggregation goes down to the right edge. *)
      out.(agg) <- j_d
    else
      (* Remote pods: aggregation goes up to the tree's core. *)
      out.(agg) <- half + m_c;
    for j = 0 to s.edges_per_pod - 1 do
      let edge = edge_id s ~pod j in
      if pod = p_d && j = j_d then
        (* Destination edge: down to the host port. *)
        out.(edge) <- s_d
      else
        (* Everyone else climbs to the tree's aggregation switch. *)
        out.(edge) <- half + i_c
    done
  done;
  out
