module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Engine = Planck_netsim.Engine
module Flow_key = Planck_packet.Flow_key
module Mac = Planck_packet.Mac
module Ipv4_addr = Planck_packet.Ipv4_addr
module Routing = Planck_topology.Routing
module Fabric = Planck_topology.Fabric
module Control_channel = Planck_openflow.Control_channel
module Flow_stats = Planck_openflow.Flow_stats
module Reroute = Planck_controller.Reroute

let log = Logs.Src.create "planck.poller" ~doc:"Polling TE baseline"

module Log = (val Logs.src_log log)

type config = {
  period : Time.t;
  elephant_threshold : float;
  mechanism : Reroute.mechanism;
}

let default_config =
  { period = Time.s 1; elephant_threshold = 0.1; mechanism = Reroute.Arp }

type t = {
  engine : Engine.t;
  routing : Routing.t;
  channel : Control_channel.t;
  link_rate : Rate.t;
  config : config;
  edges : (int * Flow_stats.t) list;
  (* Per-switch previous counter readings, for deltas. *)
  prev : (int, int Flow_key.Table.t) Hashtbl.t;
  mutable last_poll_at : Time.t;
  mutable polls : int;
  mutable reroutes : int;
}

let is_edge fabric ~switch =
  List.exists
    (fun port ->
      match Fabric.peer fabric ~switch ~port with
      | Fabric.To_host _ -> true
      | Fabric.To_switch _ | Fabric.To_monitor | Fabric.Unwired -> false)
    (Fabric.data_ports fabric ~switch)

(* A flow is counted at its source host's edge switch only, so that the
   same flow polled at several switches is not double-counted. *)
let counts_here fabric ~switch (key : Flow_key.t) =
  match Ipv4_addr.host_id key.src_ip with
  | None -> false
  | Some src -> fst (Fabric.host_attachment fabric ~host:src) = switch

let handle_replies t ~elapsed replies =
  let measured = ref [] in
  List.iter
    (fun (switch, counters) ->
      let prev =
        match Hashtbl.find_opt t.prev switch with
        | Some table -> table
        | None ->
            let table = Flow_key.Table.create 32 in
            Hashtbl.replace t.prev switch table;
            table
      in
      List.iter
        (fun (c : Flow_stats.counter) ->
          if counts_here (Routing.fabric t.routing) ~switch c.key then begin
            let before =
              Option.value ~default:0 (Flow_key.Table.find_opt prev c.key)
            in
            Flow_key.Table.replace prev c.key c.bytes;
            let delta = c.bytes - before in
            if delta > 0 && elapsed > 0 then begin
              let rate = Rate.of_bytes_per delta elapsed in
              if rate >= t.config.elephant_threshold *. t.link_rate then
                measured :=
                  { Placement.key = c.key; rate; current_mac = c.dst_mac }
                  :: !measured
            end
          end)
        counters)
    replies;
  let moves =
    Placement.global_first_fit ~routing:t.routing ~link_rate:t.link_rate
      !measured
  in
  Log.debug (fun m ->
      m "poll %d: %d elephants, %d moves" t.polls (List.length !measured)
        (List.length moves));
  List.iter
    (fun (flow, mac) ->
      t.reroutes <- t.reroutes + 1;
      Reroute.apply t.config.mechanism ~channel:t.channel ~routing:t.routing
        ~key:flow.Placement.key ~new_mac:mac)
    moves

let poll_round t =
  t.polls <- t.polls + 1;
  let started = Engine.now t.engine in
  let elapsed = started - t.last_poll_at in
  t.last_poll_at <- started;
  let expected = List.length t.edges in
  let replies = ref [] in
  List.iter
    (fun (switch, stats) ->
      Flow_stats.poll stats ~channel:t.channel (fun counters ->
          replies := (switch, counters) :: !replies;
          if List.length !replies = expected then
            handle_replies t ~elapsed !replies))
    t.edges

let create engine ~routing ~channel ~link_rate ?(config = default_config) () =
  let fabric = Routing.fabric routing in
  let edges =
    List.filter_map
      (fun switch ->
        if is_edge fabric ~switch then
          Some (switch, Flow_stats.attach (Fabric.switch fabric switch))
        else None)
      (List.init (Fabric.switch_count fabric) Fun.id)
  in
  let t =
    {
      engine;
      routing;
      channel;
      link_rate;
      config;
      edges;
      prev = Hashtbl.create 8;
      last_poll_at = Engine.now engine;
      polls = 0;
      reroutes = 0;
    }
  in
  Engine.every engine ~period:config.period (fun () -> poll_round t);
  t

let polls t = t.polls
let reroutes t = t.reroutes
