(** The Planck-driven traffic-engineering application (paper §6.2,
    Algorithm 1).

    Subscribes to collector congestion events. For every notification
    it refreshes its network view with the annotated flows, expires
    stale entries, and greedily re-routes each flow in the notification
    onto the pre-installed alternate path with the largest expected
    bottleneck capacity ([find_path_btlneck], borrowed from DevoFlow).
    Rerouting is a single message — a spoofed ARP or an OpenFlow
    rewrite rule ({!Reroute}).

    The whole decision is O(alternates × flows) per notification, which
    is what lets the control loop close in ~3 ms. *)

type config = {
  congestion_threshold : float;
      (** fraction of link capacity at which collectors raise events *)
  flow_timeout : Planck_util.Time.t;  (** 3 ms in the paper *)
  reroute_cooldown : Planck_util.Time.t;
      (** per-flow quiet period while a reroute takes effect *)
  mechanism : Reroute.mechanism;
}

val default_config : config
(** threshold 0.5, timeout 3 ms, cooldown 3 ms, ARP mechanism. *)

type t

val create :
  Planck_netsim.Engine.t ->
  routing:Planck_topology.Routing.t ->
  channel:Planck_openflow.Control_channel.t ->
  collectors:Planck_collector.Collector.t list ->
  link_rate:Planck_util.Rate.t ->
  ?config:config ->
  unit ->
  t
(** Wires the congestion subscriptions. Notifications travel
    collector → controller over the control channel (paying its
    latency) before being processed. *)

val notifications : t -> int
val reroutes : t -> int

val on_reroute :
  t ->
  (Planck_util.Time.t ->
  Planck_packet.Flow_key.t ->
  old_mac:Planck_packet.Mac.t ->
  new_mac:Planck_packet.Mac.t ->
  unit) ->
  unit
(** Observe reroute decisions (fired when the reroute message is
    sent). *)

val view : t -> Net_view.t
