module Time = Planck_util.Time

type entry = {
  system : string;
  speed_min : Time.t;
  speed_max : Time.t;
  estimated : bool;
  citation : string;
}

let published =
  [
    {
      system = "Helios";
      speed_min = Time.us 77_400;
      speed_max = Time.us 77_400;
      estimated = false;
      citation = "Farrington et al., SIGCOMM 2010";
    };
    {
      system = "sFlow/OpenSample";
      speed_min = Time.ms 100;
      speed_max = Time.ms 100;
      estimated = false;
      citation = "Suh et al., ICDCS 2014";
    };
    {
      system = "Mahout Polling (implementing Hedera)";
      speed_min = Time.ms 190;
      speed_max = Time.ms 190;
      estimated = true;
      citation = "Curtis et al., INFOCOM 2011";
    };
    {
      system = "DevoFlow Polling";
      speed_min = Time.ms 500;
      speed_max = Time.s 15;
      estimated = true;
      citation = "Curtis et al., SIGCOMM 2011";
    };
    {
      system = "Hedera";
      speed_min = Time.s 5;
      speed_max = Time.s 5;
      estimated = false;
      citation = "Al-Fares et al., NSDI 2010";
    };
  ]

let slowdown entry ~reference =
  let r = float_of_int reference in
  (float_of_int entry.speed_min /. r, float_of_int entry.speed_max /. r)

let pp_speed ppf entry =
  if entry.speed_min = entry.speed_max then Time.pp ppf entry.speed_min
  else Format.fprintf ppf "%a-%a" Time.pp entry.speed_min Time.pp entry.speed_max
