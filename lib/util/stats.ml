let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. (n -. 1.0))

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  match xs with
  | [] -> nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      if n = 1 then a.(0)
      else begin
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (floor rank) in
        let hi = min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
      end

let median xs = percentile 50.0 xs

let cdf xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  List.init n (fun i -> (a.(i), float_of_int (i + 1) /. float_of_int n))

let mean_relative_error ~truth ~estimate =
  if List.length truth <> List.length estimate then
    invalid_arg "Stats.mean_relative_error: length mismatch";
  let errors =
    List.filter_map
      (fun (t, e) ->
        if Float.equal t 0.0 then None else Some (abs_float (e -. t) /. t))
      (List.combine truth estimate)
  in
  mean errors

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> Array.init bins (fun i -> (float_of_int i, 0))
  | xs ->
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      let width =
        if hi > lo then (hi -. lo) /. float_of_int bins else 1.0
      in
      let counts = Array.make bins 0 in
      let place x =
        let i = int_of_float ((x -. lo) /. width) in
        let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
        counts.(i) <- counts.(i) + 1
      in
      List.iter place xs;
      Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end
