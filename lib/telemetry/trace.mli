(** Sim-time tracing: a bounded ring of timestamped events exportable as
    a Chrome [trace_event] JSON file, so a run can be opened in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Timestamps are the caller's responsibility ([~now], normally
    [Engine.now]); this keeps the library independent of the simulator
    and lets instrumentation stamp events retroactively — the TE app
    records its detection-to-response span by opening it at the
    congestion event's detection time from inside the (later) controller
    handler. The exporter sorts by timestamp, so out-of-order recording
    is fine.

    Like {!Metrics}, the process-wide {!default} trace starts disabled
    and every record call is a single branch when off. When the ring
    fills, the oldest record is evicted so long runs keep their most
    recent window. *)

type phase = Span_begin | Span_end | Instant

type arg =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type event = {
  ts : Planck_util.Time.t;
  cat : string;
  name : string;
  phase : phase;
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Defaults: 32768-event ring, enabled. *)

val default : t
(** The process-wide trace. Starts disabled. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** {2 Recording} *)

val instant :
  t ->
  now:Planck_util.Time.t ->
  cat:string ->
  name:string ->
  ?args:(string * arg) list ->
  unit ->
  unit

val span_begin :
  t ->
  now:Planck_util.Time.t ->
  cat:string ->
  name:string ->
  ?args:(string * arg) list ->
  unit ->
  unit

val span_end :
  t ->
  now:Planck_util.Time.t ->
  cat:string ->
  name:string ->
  ?args:(string * arg) list ->
  unit ->
  unit
(** Spans pair a [span_begin]/[span_end] with the same [cat]/[name];
    the two stamps may come from different simulated times (that is the
    point). *)

val with_span :
  t ->
  clock:(unit -> Planck_util.Time.t) ->
  cat:string ->
  name:string ->
  ?args:(string * arg) list ->
  (unit -> 'a) ->
  'a
(** Scoped span: stamps begin/end with [clock ()] (normally
    [fun () -> Engine.now engine]) around the callback, ending the span
    even if it raises. *)

(** {2 Inspection} *)

val events : t -> event list
(** Oldest first, in recording order. *)

val length : t -> int
val capacity : t -> int

val evicted : t -> int
(** Events dropped (oldest-first) because the ring was full. *)

val clear : t -> unit

val to_chrome_json : t -> string
(** The ring as a Chrome [trace_event] JSON document
    ([{"traceEvents": [...]}]), events sorted by timestamp.
    [ts] fields are microseconds; integer-nanosecond stamps divide by
    1000 exactly in a double, so they round-trip. Each category is
    assigned its own [pid] and named by an [M]-phase [process_name]
    metadata record, so Perfetto groups tracks by subsystem. *)
