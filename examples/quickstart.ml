(* Quickstart: build a small monitored network, run a TCP flow through
   it, and read Planck's estimate of that flow's rate.

     dune exec examples/quickstart.exe
*)

module Time = Planck_util.Time
module Rate = Planck_util.Rate
module Engine = Planck_netsim.Engine
module Collector = Planck_collector.Collector
module Flow = Planck_tcp.Flow
open Planck

let () =
  (* A single non-blocking 10 Gbps switch with 4 hosts and a reserved
     monitor port, PAST routing installed, ARP caches converged. *)
  let tb = Testbed.create (Testbed.microbench ~hosts:4 ()) in

  (* Attach a Planck collector to the switch's monitor port. This also
     turns on mirroring of every data port. *)
  let collector =
    Collector.create tb.Testbed.engine ~switch:0 ~routing:tb.Testbed.routing
      ~link_rate:(Testbed.link_rate tb) ()
  in
  Collector.attach collector;

  (* Start a 16 MiB TCP transfer from host 0 to host 1. *)
  let flow =
    Flow.start ~src:tb.Testbed.endpoints.(0) ~dst:tb.Testbed.endpoints.(1)
      ~src_port:42_000 ~dst_port:5_001 ~size:(16 * 1024 * 1024) ()
  in

  (* Let 5 ms of simulated time pass, then query the collector — this
     is the sub-millisecond statistics path the paper builds. *)
  Engine.run ~until:(Time.ms 5) tb.Testbed.engine;
  (match Collector.flow_rate collector (Flow.key flow) with
  | Some rate ->
      Format.printf "t=5ms   Planck estimates the flow at %a@." Rate.pp rate
  | None -> Format.printf "t=5ms   no estimate yet@.");
  Format.printf "t=5ms   link to host 1 utilization: %a (%d flows tracked)@."
    Rate.pp
    (Collector.link_utilization collector ~port:1)
    (Collector.flows_tracked collector);

  (* Run to completion and compare with the ground truth. *)
  Engine.run ~until:(Time.ms 60) tb.Testbed.engine;
  match Flow.goodput flow with
  | Some rate ->
      Format.printf "flow completed: %d bytes at %a goodput@." (Flow.size flow)
        Rate.pp rate
  | None -> Format.printf "flow did not complete?!@."
