(* SplitMix64 (Steele, Lea, Flood 2014): state advances by a fixed odd
   gamma; output is a bijective finalizer of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let derangement t n =
  if n < 2 then invalid_arg "Prng.derangement: need n >= 2";
  let rec try_once () =
    let a = permutation t n in
    let rec fixed i = i < n && (a.(i) = i || fixed (i + 1)) in
    if fixed 0 then try_once () else a
  in
  try_once ()

(* FNV-1a over the bytes. Unlike [Hashtbl.hash] this is a documented
   function of the string contents alone, so seeds derived from names
   stay stable across OCaml releases. *)
let seed_of_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  Int64.to_int !h land max_int
