(* TCP behaviour tests: handshake, bulk transfer, loss recovery (SACK),
   RTO, sequence wraparound, and ARP-driven rerouting of a live flow. *)

open Testbed
module P = Planck_packet.Packet
module H = Planck_packet.Headers
module Mac = Planck_packet.Mac
module FK = Planck_packet.Flow_key

let small_flow_completes () =
  let tb = single_switch () in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:1460 () in
  Engine.run ~until:(Time.ms 5) tb.engine;
  Alcotest.(check bool) "one-segment flow" true (Flow.completed flow);
  Alcotest.(check int) "no retransmits" 0 (Flow.retransmits flow)

let odd_sizes_complete () =
  let tb = single_switch () in
  let flows =
    List.map
      (fun (i, size) -> start_flow tb ~src:0 ~dst:(1 + (i mod 3)) ~size ())
      [ (0, 1); (1, 1461); (2, 123_457) ]
  in
  Engine.run ~until:(Time.ms 20) tb.engine;
  List.iter
    (fun f -> Alcotest.(check bool) "odd size completes" true (Flow.completed f))
    flows

let handshake_adds_rtt () =
  let tb = single_switch () in
  let with_hs =
    Flow.start ~src:tb.endpoints.(0) ~dst:tb.endpoints.(1) ~src_port:1
      ~dst_port:2 ~size:1460 ()
  in
  let without_hs =
    Flow.start ~src:tb.endpoints.(2) ~dst:tb.endpoints.(3) ~src_port:3
      ~dst_port:4 ~size:1460
      ~params:{ Flow.default_params with Flow.handshake = false }
      ()
  in
  Engine.run ~until:(Time.ms 5) tb.engine;
  let d1 = Option.get (Flow.completed_at with_hs) - Flow.started_at with_hs in
  let d2 =
    Option.get (Flow.completed_at without_hs) - Flow.started_at without_hs
  in
  Alcotest.(check bool)
    (Printf.sprintf "handshake costs an RTT (%s vs %s)" (Time.to_string d1)
       (Time.to_string d2))
    true
    (d1 > d2 + Time.us 100)

let goodput_near_line_rate () =
  let tb = single_switch () in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(30 * 1024 * 1024) () in
  Engine.run ~until:(Time.ms 100) tb.engine;
  match Flow.goodput flow with
  | None -> Alcotest.fail "incomplete"
  | Some rate ->
      Alcotest.(check bool)
        (Printf.sprintf "%.2f Gbps" (Rate.to_gbps rate))
        true
        (Rate.to_gbps rate > 8.0)

let two_flows_share_fairly () =
  (* Two senders into one receiver port: each should get just under half
     of the 10 Gbps, with neither starving (paper Fig 15 regime). *)
  let tb = single_switch () in
  let size = 20 * 1024 * 1024 in
  let f1 = start_flow tb ~src:0 ~dst:2 ~size () in
  let f2 = start_flow tb ~src:1 ~dst:2 ~size () in
  Engine.run ~until:(Time.ms 200) tb.engine;
  let g f = Rate.to_gbps (Option.get (Flow.goodput f)) in
  Alcotest.(check bool) "both complete" true
    (Flow.completed f1 && Flow.completed f2);
  Alcotest.(check bool)
    (Printf.sprintf "fair-ish split %.2f / %.2f" (g f1) (g f2))
    true
    (g f1 > 3.0 && g f2 > 3.0 && g f1 +. g f2 < 11.5)

let recovers_from_loss () =
  (* Tiny switch buffer forces drops during slow start; SACK recovery
     must finish the flow without collapsing. *)
  let config =
    {
      Switch.default_config with
      Switch.buffer_total = 150_000;
      buffer_reservation = 0;
    }
  in
  let tb = single_switch ~config () in
  let flow = start_flow tb ~src:0 ~dst:1 ~size:(10 * 1024 * 1024) () in
  Engine.run ~until:(Time.s 2) tb.engine;
  Alcotest.(check bool) "completed despite drops" true (Flow.completed flow);
  Alcotest.(check bool) "losses actually happened" true
    (Flow.retransmits flow > 0
    || Switch.total_data_drops (Fabric.switch tb.fabric 0) = 0)

let sequence_wraparound () =
  (* Start the sequence space just below 2^32 so a modest flow crosses
     the wrap; on-wire sequence numbers are 32-bit. *)
  let tb = single_switch () in
  let size = 20 * 1024 * 1024 in
  let isn = (1 lsl 32) - (4 * 1024 * 1024) in
  let flow =
    start_flow tb ~src:0 ~dst:1 ~size
      ~params:{ Flow.default_params with Flow.isn }
      ()
  in
  Engine.run ~until:(Time.ms 100) tb.engine;
  Alcotest.(check bool) "flow completes across seq wrap" true
    (Flow.completed flow);
  Alcotest.(check int) "all bytes acked" size (Flow.bytes_acked flow)

let reroute_via_arp_mid_flow () =
  (* Change the sender's ARP entry to a shadow MAC mid-flow; with the
     shadow route installed and the rewrite rule present, the flow must
     keep going and finish. *)
  let tb = single_switch () in
  let sw = Fabric.switch tb.fabric 0 in
  let shadow = Mac.shadow (Mac.host 1) ~alt:1 in
  Switch.add_route sw shadow 1;
  Switch.add_rewrite sw ~from_mac:shadow ~to_mac:(Mac.host 1);
  let size = 20 * 1024 * 1024 in
  let flow = start_flow tb ~src:0 ~dst:1 ~size () in
  let seen_shadow = ref 0 in
  Switch.add_forward_tap sw (fun ~in_port:_ ~out_port:_ p ->
      if Mac.equal (P.dst_mac p) shadow then incr seen_shadow);
  Engine.schedule tb.engine ~delay:(Time.ms 5) (fun () ->
      Host.arp_set (Fabric.host tb.fabric 0) (Host.ip (Fabric.host tb.fabric 1))
        shadow);
  Engine.run ~until:(Time.ms 100) tb.engine;
  Alcotest.(check bool) "completes across reroute" true (Flow.completed flow);
  Alcotest.(check bool) "shadow route used" true (!seen_shadow > 1000)

let flow_rejects_bad_args () =
  let tb = single_switch () in
  Alcotest.check_raises "size 0" (Invalid_argument "x") (fun () ->
      try ignore (start_flow tb ~src:0 ~dst:1 ~size:0 ())
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let endpoint_unclaimed () =
  let tb = single_switch () in
  (* A stray segment addressed at an endpoint with no registered flow. *)
  let stray =
    P.tcp
      ~src_mac:(Host.mac (Fabric.host tb.fabric 0))
      ~dst_mac:(Host.mac (Fabric.host tb.fabric 1))
      ~src_ip:(Host.ip (Fabric.host tb.fabric 0))
      ~dst_ip:(Host.ip (Fabric.host tb.fabric 1))
      ~src_port:999 ~dst_port:999 ~seq:0 ~ack_seq:0 ~flags:H.Tcp_flags.ack
      ~payload_len:100 ()
  in
  Host.send (Fabric.host tb.fabric 0) stray;
  Engine.run ~until:(Time.ms 1) tb.engine;
  Alcotest.(check int) "unclaimed counted" 1
    (Endpoint.unclaimed tb.endpoints.(1))

let concurrent_flows_one_pair () =
  (* Several flows between the same host pair must be demultiplexed
     independently. *)
  let tb = single_switch () in
  let flows =
    List.init 4 (fun i ->
        Flow.start ~src:tb.endpoints.(0) ~dst:tb.endpoints.(1)
          ~src_port:(100 + i) ~dst_port:(200 + i) ~size:(1024 * 1024) ())
  in
  Engine.run ~until:(Time.ms 50) tb.engine;
  List.iter
    (fun f -> Alcotest.(check bool) "each completes" true (Flow.completed f))
    flows

let tests =
  [
    Alcotest.test_case "one-segment flow" `Quick small_flow_completes;
    Alcotest.test_case "odd sizes complete" `Quick odd_sizes_complete;
    Alcotest.test_case "handshake costs an RTT" `Quick handshake_adds_rtt;
    Alcotest.test_case "goodput near line rate" `Quick goodput_near_line_rate;
    Alcotest.test_case "two flows share a link fairly" `Quick
      two_flows_share_fairly;
    Alcotest.test_case "SACK recovery under loss" `Quick recovers_from_loss;
    Alcotest.test_case "seq wraparound mid-flow" `Quick sequence_wraparound;
    Alcotest.test_case "ARP reroute mid-flow" `Quick reroute_via_arp_mid_flow;
    Alcotest.test_case "rejects bad sizes" `Quick flow_rejects_bad_args;
    Alcotest.test_case "unclaimed segments counted" `Quick endpoint_unclaimed;
    Alcotest.test_case "concurrent flows between one pair" `Quick
      concurrent_flows_one_pair;
  ]
