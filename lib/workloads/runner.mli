(** Launch workloads over TCP endpoints and collect per-flow results. *)

type flow_result = {
  src : int;
  dst : int;
  size : int;
  completed : bool;
  start_time : Planck_util.Time.t;
  finish_time : Planck_util.Time.t option;
  goodput : Planck_util.Rate.t option;
  retransmits : int;
  timeouts : int;
}

type shuffle_result = {
  flows : flow_result list;
  host_done : Planck_util.Time.t option array;
      (** per host, when its last send finished *)
}

val run_pairs :
  Planck_netsim.Engine.t ->
  endpoints:Planck_tcp.Endpoint.t array ->
  pairs:Generate.pair list ->
  size:int ->
  ?params:Planck_tcp.Flow.params ->
  ?on_flow:(Planck_tcp.Flow.t -> unit) ->
  ?horizon:Planck_util.Time.t ->
  unit ->
  flow_result list
(** Start one flow per pair at time now; run the engine until all
    complete or [horizon] (default 120 s) simulated time passes.
    Incomplete flows are reported with [completed = false]. [on_flow]
    sees every flow as it starts (observability hooks, e.g.
    {!Planck.Recorder.track_flow}). *)

val run_pairs_sharded :
  Planck_netsim.Shard.group ->
  shard_of_src:(int -> int) ->
  endpoints:Planck_tcp.Endpoint.t array ->
  pairs:Generate.pair list ->
  size:int ->
  ?params:Planck_tcp.Flow.params ->
  ?on_flow:(Planck_tcp.Flow.t -> unit) ->
  ?horizon:Planck_util.Time.t ->
  unit ->
  flow_result list
(** {!run_pairs} on a shard group: flows start on the calling domain,
    then the group's lockstep window loop replaces the single-engine
    chunk loop. [shard_of_src] maps a source host id to its shard
    (i.e. [Fabric.shard_of_host]); each shard judges completion over
    the flows sourced from it, whose state its own domain writes. With
    one shard this runs the identical event sequence to {!run_pairs}. *)

val run_churn :
  Planck_netsim.Engine.t ->
  endpoints:Planck_tcp.Endpoint.t array ->
  arrivals:Generate.arrival list ->
  ?params:Planck_tcp.Flow.params ->
  ?on_flow:(Planck_tcp.Flow.t -> unit) ->
  ?horizon:Planck_util.Time.t ->
  unit ->
  flow_result list
(** Launch each {!Generate.arrival} at its scheduled time; run until
    every launched flow completes or [horizon] passes. Results are in
    launch order. *)

val run_shuffle :
  Planck_netsim.Engine.t ->
  endpoints:Planck_tcp.Endpoint.t array ->
  orders:int array array ->
  concurrency:int ->
  size:int ->
  ?params:Planck_tcp.Flow.params ->
  ?on_flow:(Planck_tcp.Flow.t -> unit) ->
  ?horizon:Planck_util.Time.t ->
  unit ->
  shuffle_result
(** Each host sends [size] bytes to every other host in its given
    order, [concurrency] transfers at a time (the paper uses 2).
    [on_flow] sees every flow as it starts, including those launched
    later by completion chaining. *)

val average_goodput_gbps : flow_result list -> float
(** Mean per-flow goodput over completed flows — the paper's Figure 14
    / 17 metric. *)
