(** Text and JSON rendering of a lint run. *)

val text_of :
  findings:Lint_finding.t list -> suppressed:int -> files:int -> string
(** One [file:line:col: severity [rule] message] line per finding plus a
    summary line. *)

val json_of :
  findings:Lint_finding.t list -> suppressed:int -> files:int -> string
(** Machine-readable report:
    [{"version":1,"findings":[{rule,severity,file,line,col,message,
      symbol}...],"files":n,"errors":n,"warnings":n,"suppressed":n}].
    Strings are escaped to valid UTF-8 JSON: control characters as
    [\u00XX], well-formed multibyte UTF-8 verbatim (byte-for-byte
    round-trip), malformed bytes sanitised as [\u00XX]. *)

val rules_text : unit -> string
(** Human-readable rule catalog for [--list-rules]. *)
